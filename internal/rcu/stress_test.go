package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressReadersVsSynchronize hammers the reader entry/exit path
// against a stream of grace periods and checks the fundamental
// invariant with a "tombstone" detector: an object retired after a
// grace period must never be observed by any reader.
func TestStressReadersVsSynchronize(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	d := NewDomain()
	defer d.Close()

	type cell struct {
		alive atomic.Bool
	}
	var ptr atomic.Pointer[cell]
	first := &cell{}
	first.alive.Store(true)
	ptr.Store(first)

	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 4 {
		readers = 4
	}
	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				c := ptr.Load()
				// Nested section, as the hash table's Range does.
				r.Lock()
				if !c.alive.Load() {
					bad.Add(1)
				}
				r.Unlock()
				r.Unlock()
			}
		}()
	}

	deadline := time.Now().Add(1 * time.Second)
	for time.Now().Before(deadline) {
		next := &cell{}
		next.alive.Store(true)
		old := ptr.Swap(next)
		d.Synchronize()
		old.alive.Store(false) // retire: no reader may still see it
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d reader observations of retired cells", n)
	}
}

// TestStressDefer mixes Defer-based retirement with direct
// Synchronize, ensuring callbacks neither run early nor get lost.
func TestStressDefer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	d := NewDomain()
	defer d.Close()

	var queued, ran atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				runtime.Gosched()
				r.Unlock()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		queued.Add(1)
		d.Defer(func() { ran.Add(1) })
	}
	close(stop)
	wg.Wait()
	d.Barrier()
	if q, r := queued.Load(), ran.Load(); r < q {
		t.Fatalf("queued %d callbacks, only %d ran after Barrier", q, r)
	}
}

// BenchmarkReaderSection measures the read-side cost: the paper's
// entire premise is that this is a handful of nanoseconds and does
// not degrade with core count.
func BenchmarkReaderSection(b *testing.B) {
	d := NewDomain()
	defer d.Close()
	b.RunParallel(func(pb *testing.PB) {
		r := d.Register()
		defer r.Close()
		for pb.Next() {
			r.Lock()
			r.Unlock()
		}
	})
}

// BenchmarkSynchronize measures writer-side grace-period latency with
// a population of active readers.
func BenchmarkSynchronize(b *testing.B) {
	d := NewDomain()
	defer d.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Lock()
				r.Unlock()
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Synchronize()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
