// Package rlist implements the relativistic singly linked list from
// the paper's worked examples: readers traverse with no
// synchronization at all while a writer inserts by
// initialize-then-publish and removes by unlink, wait-for-readers,
// reclaim. It is both a usable structure and the reference semantics
// for the hash table's bucket chains in internal/core.
//
// Guarantees for a reader traversing concurrently with one writer:
//
//   - Insert: the reader sees the list either without the new node or
//     with it fully initialized — never a half-built node (pointer
//     publication orders initialization before visibility).
//   - Remove: the reader sees the node either present or absent; a
//     reader that already holds a reference may keep using it until
//     its section ends, which is exactly what the writer's grace
//     period waits for.
//
// Values are immutable once published; to change a value, insert a
// replacement node and remove the old one.
package rlist

import (
	"sync"
	"sync/atomic"

	"rphash/internal/rcu"
)

// Node is a list element. Value must not be mutated after the node is
// published; readers access it without synchronization.
type Node[T any] struct {
	next  atomic.Pointer[Node[T]]
	Value T
}

// Next returns the successor node, for reader-side manual traversal.
// Callers must be inside a read-side critical section of the list's
// domain.
func (n *Node[T]) Next() *Node[T] { return n.next.Load() }

// List is a relativistic singly linked list. Readers never block;
// writers serialize on an internal mutex.
type List[T any] struct {
	head atomic.Pointer[Node[T]]
	dom  *rcu.Domain
	mu   sync.Mutex
	size atomic.Int64
}

// New creates a list whose readers are delimited by dom.
func New[T any](dom *rcu.Domain) *List[T] {
	return &List[T]{dom: dom}
}

// Domain returns the RCU domain readers of this list must register
// with.
func (l *List[T]) Domain() *rcu.Domain { return l.dom }

// Len returns the current element count (writer-accurate, reader
// approximate).
func (l *List[T]) Len() int { return int(l.size.Load()) }

// Head returns the first node for manual traversal inside a reader
// section.
func (l *List[T]) Head() *Node[T] { return l.head.Load() }

// PushFront inserts a value at the head of the list and returns its
// node. This is the paper's insertion example: the node's next pointer
// is initialized before the head pointer publishes the node.
func (l *List[T]) PushFront(v T) *Node[T] {
	n := &Node[T]{Value: v}
	l.mu.Lock()
	defer l.mu.Unlock()
	n.next.Store(l.head.Load()) // initialize ...
	l.head.Store(n)             // ... then publish
	l.size.Add(1)
	return n
}

// InsertAfter inserts a value immediately after an existing node that
// must currently be on the list.
func (l *List[T]) InsertAfter(at *Node[T], v T) *Node[T] {
	n := &Node[T]{Value: v}
	l.mu.Lock()
	defer l.mu.Unlock()
	n.next.Store(at.next.Load())
	at.next.Store(n)
	l.size.Add(1)
	return n
}

// Remove unlinks the first node for which match returns true and
// returns its value. The removed node is handed to the domain's
// deferred reclaimer, mirroring the paper's remove example; in Go the
// callback only recycles bookkeeping, but the grace period is what
// would make freeing safe.
func (l *List[T]) Remove(match func(T) bool) (T, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var prev *Node[T]
	for n := l.head.Load(); n != nil; n = n.next.Load() {
		if match(n.Value) {
			l.unlink(prev, n)
			victim := n
			l.dom.Defer(func() {
				// No reader can reach victim now; sever its next
				// pointer so a long-dead node cannot pin the tail.
				victim.next.Store(nil)
			})
			return n.Value, true
		}
		prev = n
	}
	var zero T
	return zero, false
}

// RemoveNode unlinks a specific node if it is still on the list.
func (l *List[T]) RemoveNode(target *Node[T]) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	var prev *Node[T]
	for n := l.head.Load(); n != nil; n = n.next.Load() {
		if n == target {
			l.unlink(prev, n)
			l.dom.Defer(func() { target.next.Store(nil) })
			return true
		}
		prev = n
	}
	return false
}

// unlink removes n (whose predecessor is prev, nil meaning head) from
// the chain. Callers hold l.mu.
func (l *List[T]) unlink(prev, n *Node[T]) {
	next := n.next.Load()
	if prev == nil {
		l.head.Store(next)
	} else {
		prev.next.Store(next)
	}
	l.size.Add(-1)
}

// MoveToFront atomically (from a reader's perspective: the element is
// never absent) moves the first matching element to the head by
// inserting a copy at the head and then unlinking the original. A
// concurrent reader may transiently observe the value twice; it never
// observes it zero times.
func (l *List[T]) MoveToFront(match func(T) bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	var prev *Node[T]
	for n := l.head.Load(); n != nil; n = n.next.Load() {
		if match(n.Value) {
			if prev == nil {
				return true // already at head
			}
			cp := &Node[T]{Value: n.Value}
			cp.next.Store(l.head.Load())
			l.head.Store(cp) // copy visible first: never absent
			l.unlink(prev, n)
			l.size.Add(1) // unlink decremented; net zero
			victim := n
			l.dom.Defer(func() { victim.next.Store(nil) })
			return true
		}
		prev = n
	}
	return false
}

// Find returns the first value matching the predicate. It runs in a
// read-side critical section internally; callers already inside a
// section may instead traverse via Head/Next.
func (l *List[T]) Find(match func(T) bool) (T, bool) {
	var out T
	var ok bool
	l.dom.Read(func() {
		for n := l.head.Load(); n != nil; n = n.next.Load() {
			if match(n.Value) {
				out, ok = n.Value, true
				return
			}
		}
	})
	return out, ok
}

// Each calls fn on every value until fn returns false. The traversal
// runs inside a read-side critical section; it observes a consistent
// relativistic view: every element present for the whole traversal is
// visited at least once.
func (l *List[T]) Each(fn func(T) bool) {
	l.dom.Read(func() {
		for n := l.head.Load(); n != nil; n = n.next.Load() {
			if !fn(n.Value) {
				return
			}
		}
	})
}

// Snapshot returns the values currently reachable, in list order.
func (l *List[T]) Snapshot() []T {
	var out []T
	l.Each(func(v T) bool {
		out = append(out, v)
		return true
	})
	return out
}
