package rlist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"rphash/internal/rcu"
)

func newList(t testing.TB) *List[int] {
	t.Helper()
	dom := rcu.NewDomain()
	t.Cleanup(dom.Close)
	return New[int](dom)
}

func eq(n int) func(int) bool { return func(v int) bool { return v == n } }

func TestEmpty(t *testing.T) {
	l := newList(t)
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if _, ok := l.Find(eq(1)); ok {
		t.Fatal("Find on empty list returned true")
	}
	if _, ok := l.Remove(eq(1)); ok {
		t.Fatal("Remove on empty list returned true")
	}
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot = %v, want empty", got)
	}
}

func TestPushFrontOrder(t *testing.T) {
	l := newList(t)
	for i := 1; i <= 5; i++ {
		l.PushFront(i)
	}
	want := []int{5, 4, 3, 2, 1}
	got := l.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
}

func TestInsertAfter(t *testing.T) {
	l := newList(t)
	a := l.PushFront(1)
	l.InsertAfter(a, 2)
	l.InsertAfter(a, 3)
	got := l.Snapshot()
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestRemove(t *testing.T) {
	l := newList(t)
	for i := 1; i <= 4; i++ {
		l.PushFront(i) // 4 3 2 1
	}
	if v, ok := l.Remove(eq(3)); !ok || v != 3 {
		t.Fatalf("Remove(3) = %d,%v", v, ok)
	}
	if _, ok := l.Find(eq(3)); ok {
		t.Fatal("3 still findable after Remove")
	}
	// Remove head and tail.
	if v, ok := l.Remove(eq(4)); !ok || v != 4 {
		t.Fatalf("Remove(head) = %d,%v", v, ok)
	}
	if v, ok := l.Remove(eq(1)); !ok || v != 1 {
		t.Fatalf("Remove(tail) = %d,%v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if _, ok := l.Remove(eq(42)); ok {
		t.Fatal("Remove of absent value returned true")
	}
}

func TestRemoveNode(t *testing.T) {
	l := newList(t)
	n2 := l.PushFront(2)
	l.PushFront(1)
	if !l.RemoveNode(n2) {
		t.Fatal("RemoveNode failed for live node")
	}
	if l.RemoveNode(n2) {
		t.Fatal("RemoveNode succeeded twice for the same node")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestMoveToFront(t *testing.T) {
	l := newList(t)
	for i := 1; i <= 3; i++ {
		l.PushFront(i) // 3 2 1
	}
	if !l.MoveToFront(eq(1)) {
		t.Fatal("MoveToFront(1) failed")
	}
	got := l.Snapshot()
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after move", l.Len())
	}
	if !l.MoveToFront(eq(1)) {
		t.Fatal("MoveToFront of head should be a no-op success")
	}
	if l.MoveToFront(eq(99)) {
		t.Fatal("MoveToFront of absent value returned true")
	}
}

func TestEachEarlyStop(t *testing.T) {
	l := newList(t)
	for i := 1; i <= 10; i++ {
		l.PushFront(i)
	}
	var visited int
	l.Each(func(int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d nodes, want 3", visited)
	}
}

// TestQuickAgainstModel drives the list with random operations and
// compares against a plain-slice model.
func TestQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind byte
		Val  uint8
	}
	check := func(ops []op) bool {
		l := New[int](rcu.NewDomain())
		defer l.Domain().Close()
		var model []int
		for _, o := range ops {
			v := int(o.Val % 16)
			switch o.Kind % 3 {
			case 0: // push front
				l.PushFront(v)
				model = append([]int{v}, model...)
			case 1: // remove first match
				_, got := l.Remove(eq(v))
				want := false
				for i, m := range model {
					if m == v {
						model = append(model[:i:i], model[i+1:]...)
						want = true
						break
					}
				}
				if got != want {
					return false
				}
			case 2: // find
				_, got := l.Find(eq(v))
				want := false
				for _, m := range model {
					if m == v {
						want = true
						break
					}
				}
				if got != want {
					return false
				}
			}
		}
		if l.Len() != len(model) {
			return false
		}
		snap := l.Snapshot()
		if len(snap) != len(model) {
			return false
		}
		for i := range model {
			if snap[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTortureReadersNeverMissStableElements: while a writer churns
// volatile elements, elements that are never removed must be visible
// to every traversal — the relativistic consistency contract.
func TestTortureReadersNeverMissStableElements(t *testing.T) {
	dom := rcu.NewDomain()
	defer dom.Close()
	l := New[int](dom)

	const stableCount = 8
	for i := 0; i < stableCount; i++ {
		l.PushFront(i) // stable keys 0..7
	}

	stop := make(chan struct{})
	var misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				seen := make([]bool, stableCount)
				l.Each(func(v int) bool {
					if v < stableCount {
						seen[v] = true
					}
					return true
				})
				for _, s := range seen {
					if !s {
						misses.Add(1)
					}
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(7))
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		v := stableCount + rng.Intn(100)
		l.PushFront(v)
		if rng.Intn(2) == 0 {
			l.Remove(func(x int) bool { return x >= stableCount })
		}
		l.MoveToFront(func(x int) bool { return x >= stableCount })
	}
	close(stop)
	wg.Wait()
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d traversals missed a stable element", n)
	}
}
