// Package rtree implements a relativistic radix tree — one of the
// other relativistic data structures the paper enumerates ("Linked
// lists, Radix trees, Tries, ..."), built on the same three
// primitives as the hash table: delimited readers, pointer
// publication, and wait-for-readers.
//
// The structure follows the Linux kernel's radix tree: a 16-way
// (4-bit stride) tree over uint64 keys whose height grows and
// shrinks with the largest stored key. Readers walk child pointers
// with no synchronization; writers serialize on a mutex and follow
// the relativistic discipline:
//
//   - Insert publishes fully-built subtrees bottom-up; a reader sees
//     the new key either entirely or not at all.
//   - Height growth builds the new root (with the old root as child
//     0) before publishing it; readers on the old root still reach
//     every key, because the old root covers exactly the keys that
//     existed before growth.
//   - Height shrink publishes the root's only child as the new root,
//     then waits for readers before the old root can be recycled;
//     readers mid-walk through the old root still terminate
//     correctly since its subtree is untouched.
//   - Delete clears the leaf slot and prunes now-empty internal
//     nodes bottom-up; pruned nodes keep their child pointers, so a
//     reader already inside one finishes its walk unharmed.
package rtree

import (
	"sync"
	"sync/atomic"

	"rphash/internal/rcu"
)

const (
	// strideBits is the per-level stride; fanout children per node.
	strideBits = 4
	fanout     = 1 << strideBits
	strideMask = fanout - 1
	// maxHeight covers the full 64-bit key space.
	maxHeight = 64 / strideBits
)

// slotKind discriminates what a child slot holds.
type slotKind uint8

const (
	slotNode slotKind = iota
	slotLeaf
)

// slot is an immutable child descriptor; replacing a child publishes
// a fresh slot, so readers never observe a half-updated one.
type slot[V any] struct {
	kind slotKind
	node *rnode[V]
	key  uint64 // leaf: full key (walks confirm, like hash+key in the table)
	val  *V     // leaf: value pointer (atomic replacement on update)
}

// rnode is an internal node with fanout child slots.
type rnode[V any] struct {
	slots [fanout]atomic.Pointer[slot[V]]
}

// count returns the number of occupied slots (writer-side use only).
func (n *rnode[V]) count() int {
	c := 0
	for i := range n.slots {
		if n.slots[i].Load() != nil {
			c++
		}
	}
	return c
}

// Tree is a resizable-height relativistic radix tree keyed by uint64.
type Tree[V any] struct {
	// root holds the current root node; height is how many levels the
	// tree has (0 = empty). Both are published together via meta.
	meta   atomic.Pointer[treeMeta[V]]
	dom    *rcu.Domain
	ownDom bool
	mu     sync.Mutex
	size   atomic.Int64
}

// treeMeta binds a root to its height so readers see a consistent
// pair with one load.
type treeMeta[V any] struct {
	root   *rnode[V]
	height int // levels; keys < 1<<(height*strideBits) are addressable
}

// New creates a tree. Pass nil to own a private RCU domain.
func New[V any](dom *rcu.Domain) *Tree[V] {
	t := &Tree[V]{}
	if dom != nil {
		t.dom = dom
	} else {
		t.dom = rcu.NewDomain()
		t.ownDom = true
	}
	t.meta.Store(&treeMeta[V]{root: nil, height: 0})
	return t
}

// Domain returns the tree's RCU domain.
func (t *Tree[V]) Domain() *rcu.Domain { return t.dom }

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return int(t.size.Load()) }

// Height returns the current tree height (levels).
func (t *Tree[V]) Height() int { return t.meta.Load().height }

// Close releases the private domain, if owned.
func (t *Tree[V]) Close() {
	if t.ownDom {
		t.dom.Close()
	}
}

// chunk extracts the child index for a key at a given level (level 1
// is the leaf level).
func chunk(key uint64, level int) int {
	return int((key >> (uint(level-1) * strideBits)) & strideMask)
}

// addressable reports whether key fits in a tree of the given height.
func addressable(key uint64, height int) bool {
	if height >= maxHeight {
		return true
	}
	return key < 1<<(uint(height)*strideBits)
}

// Get returns the value for key. Read-side: a delimited section
// around an unsynchronized pointer walk.
func (t *Tree[V]) Get(key uint64) (V, bool) {
	var v V
	var ok bool
	t.dom.Read(func() {
		v, ok = t.lookup(key)
	})
	return v, ok
}

func (t *Tree[V]) lookup(key uint64) (V, bool) {
	var zero V
	m := t.meta.Load()
	if m.root == nil || !addressable(key, m.height) {
		return zero, false
	}
	n := m.root
	for level := m.height; level >= 1; level-- {
		s := n.slots[chunk(key, level)].Load()
		if s == nil {
			return zero, false
		}
		if s.kind == slotLeaf {
			// Leaves may sit above the bottom level only when the
			// tree stores a single path; key confirms identity.
			if s.key == key {
				return *s.val, true
			}
			return zero, false
		}
		n = s.node
	}
	return zero, false
}

// Handle is a registered per-goroutine reader for hot lookups.
type Handle[V any] struct {
	t *Tree[V]
	r *rcu.Reader
}

// NewHandle registers a reader.
func (t *Tree[V]) NewHandle() *Handle[V] {
	return &Handle[V]{t: t, r: t.dom.Register()}
}

// Get looks up key via the handle's reader.
func (h *Handle[V]) Get(key uint64) (V, bool) {
	h.r.Lock()
	v, ok := h.t.lookup(key)
	h.r.Unlock()
	return v, ok
}

// Close deregisters the handle.
func (h *Handle[V]) Close() { h.r.Close() }

// Set inserts or replaces the value for key, reporting whether it
// inserted.
func (t *Tree[V]) Set(key uint64, v V) bool {
	t.mu.Lock()
	defer t.mu.Unlock()

	t.growLocked(key)
	m := t.meta.Load()

	n := m.root
	for level := m.height; level >= 1; level-- {
		sp := &n.slots[chunk(key, level)]
		s := sp.Load()
		switch {
		case s == nil:
			// Publish a leaf here (possibly above the bottom —
			// path compression on insert).
			val := v
			sp.Store(&slot[V]{kind: slotLeaf, key: key, val: &val})
			t.size.Add(1)
			return true
		case s.kind == slotLeaf && s.key == key:
			// Replace: fresh slot, atomic publication.
			val := v
			sp.Store(&slot[V]{kind: slotLeaf, key: key, val: &val})
			return false
		case s.kind == slotLeaf:
			// Collision with a compressed leaf: push it one level
			// down inside a fully-built child, then publish.
			if level == 1 {
				// Bottom level: distinct keys cannot collide here.
				panic("rtree: leaf collision at level 1")
			}
			child := &rnode[V]{}
			child.slots[chunk(s.key, level-1)].Store(s)
			sp.Store(&slot[V]{kind: slotNode, node: child})
			n = child
		default:
			n = s.node
		}
	}
	panic("rtree: walk fell off the tree") // unreachable by construction
}

// growLocked raises the height until key is addressable. The new
// root is fully built (old root as child 0) before publication.
func (t *Tree[V]) growLocked(key uint64) {
	for {
		m := t.meta.Load()
		if m.root == nil {
			h := 1
			for !addressable(key, h) {
				h++
			}
			t.meta.Store(&treeMeta[V]{root: &rnode[V]{}, height: h})
			return
		}
		if addressable(key, m.height) {
			return
		}
		root := &rnode[V]{}
		if m.root.count() > 0 {
			root.slots[0].Store(&slot[V]{kind: slotNode, node: m.root})
		}
		t.meta.Store(&treeMeta[V]{root: root, height: m.height + 1})
	}
}

// Delete removes key, reporting whether it was present. Empty
// internal nodes along the path are pruned; the old nodes keep their
// pointers so concurrent readers finish unharmed.
func (t *Tree[V]) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()

	m := t.meta.Load()
	if m.root == nil || !addressable(key, m.height) {
		return false
	}
	// Record the path for pruning.
	type step struct {
		node *rnode[V]
		idx  int
	}
	path := make([]step, 0, m.height)
	n := m.root
	level := m.height
	for ; level >= 1; level-- {
		idx := chunk(key, level)
		s := n.slots[idx].Load()
		if s == nil {
			return false
		}
		path = append(path, step{n, idx})
		if s.kind == slotLeaf {
			if s.key != key {
				return false
			}
			break
		}
		n = s.node
	}
	if level == 0 {
		return false
	}

	// Clear the leaf, then prune empty ancestors bottom-up.
	last := path[len(path)-1]
	last.node.slots[last.idx].Store(nil)
	t.size.Add(-1)
	for i := len(path) - 2; i >= 0; i-- {
		child := path[i+1].node
		if child.count() > 0 {
			break
		}
		path[i].node.slots[path[i].idx].Store(nil)
	}
	//lint:allow rplint/gracewait kernel-style height shrink synchronizes under the writer lock, mirroring the reference radix tree; the lock is never taken by readers
	t.shrinkLocked()
	return true
}

// shrinkLocked lowers the height while the root has at most one
// child in slot 0 (kernel-style). Each step publishes the new meta
// and waits for readers so the displaced root can be reused safely.
func (t *Tree[V]) shrinkLocked() {
	for {
		m := t.meta.Load()
		if m.root == nil {
			return
		}
		if t.size.Load() == 0 {
			t.meta.Store(&treeMeta[V]{root: nil, height: 0})
			t.dom.Synchronize()
			return
		}
		if m.height <= 1 {
			return
		}
		s0 := m.root.slots[0].Load()
		if m.root.count() != 1 || s0 == nil || s0.kind != slotNode {
			return
		}
		t.meta.Store(&treeMeta[V]{root: s0.node, height: m.height - 1})
		t.dom.Synchronize()
	}
}

// Range walks all keys in ascending order inside one read section,
// calling fn until it returns false. Concurrent-writer semantics
// match the hash table's Range.
func (t *Tree[V]) Range(fn func(uint64, V) bool) {
	t.dom.Read(func() {
		m := t.meta.Load()
		if m.root != nil {
			t.walk(m.root, m.height, fn)
		}
	})
}

func (t *Tree[V]) walk(n *rnode[V], level int, fn func(uint64, V) bool) bool {
	for i := 0; i < fanout; i++ {
		s := n.slots[i].Load()
		if s == nil {
			continue
		}
		if s.kind == slotLeaf {
			if !fn(s.key, *s.val) {
				return false
			}
			continue
		}
		if !t.walk(s.node, level-1, fn) {
			return false
		}
	}
	return true
}
