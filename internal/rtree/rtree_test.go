package rtree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"rphash/internal/rcu"
)

func newTree(t testing.TB) *Tree[int] {
	t.Helper()
	tr := New[int](nil)
	t.Cleanup(tr.Close)
	return tr
}

func TestEmpty(t *testing.T) {
	tr := newTree(t)
	if _, ok := tr.Get(0); ok {
		t.Fatal("Get on empty tree")
	}
	if tr.Delete(0) {
		t.Fatal("Delete on empty tree")
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestSetGetDelete(t *testing.T) {
	tr := newTree(t)
	if !tr.Set(5, 50) {
		t.Fatal("first Set did not insert")
	}
	if tr.Set(5, 51) {
		t.Fatal("second Set did not replace")
	}
	if v, ok := tr.Get(5); !ok || v != 51 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Fatal("Delete semantics wrong")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestZeroKey(t *testing.T) {
	tr := newTree(t)
	tr.Set(0, 1)
	if v, ok := tr.Get(0); !ok || v != 1 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := newTree(t)
	tr.Set(1, 1) // tiny key: height 1
	h1 := tr.Height()
	tr.Set(1<<32, 2) // forces many levels
	h2 := tr.Height()
	if h2 <= h1 {
		t.Fatalf("height did not grow: %d -> %d", h1, h2)
	}
	// Old keys must survive growth.
	if v, ok := tr.Get(1); !ok || v != 1 {
		t.Fatalf("Get(1) after growth = %d,%v", v, ok)
	}
	if v, ok := tr.Get(1 << 32); !ok || v != 2 {
		t.Fatalf("Get(big) = %d,%v", v, ok)
	}
}

func TestHeightShrinkOnDelete(t *testing.T) {
	tr := newTree(t)
	tr.Set(1, 1)
	tr.Set(1<<40, 2)
	grown := tr.Height()
	if !tr.Delete(1 << 40) {
		t.Fatal("Delete(big) failed")
	}
	if tr.Height() >= grown {
		t.Fatalf("height did not shrink: %d -> %d", grown, tr.Height())
	}
	if v, ok := tr.Get(1); !ok || v != 1 {
		t.Fatalf("Get(1) after shrink = %d,%v", v, ok)
	}
	tr.Delete(1)
	if tr.Height() != 0 || tr.Len() != 0 {
		t.Fatalf("empty tree: height=%d len=%d", tr.Height(), tr.Len())
	}
}

func TestMaxKey(t *testing.T) {
	tr := newTree(t)
	const maxKey = ^uint64(0)
	tr.Set(maxKey, 7)
	if v, ok := tr.Get(maxKey); !ok || v != 7 {
		t.Fatalf("Get(max) = %d,%v", v, ok)
	}
	tr.Set(0, 8)
	if v, ok := tr.Get(0); !ok || v != 8 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
}

func TestDenseAndSparse(t *testing.T) {
	tr := newTree(t)
	// Dense low range + sparse high bits exercise both compressed
	// leaves and full paths.
	for i := uint64(0); i < 1000; i++ {
		tr.Set(i, int(i))
	}
	for i := uint64(1); i < 20; i++ {
		tr.Set(i<<40|i, int(i+10000))
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := tr.Get(i); !ok || v != int(i) {
			t.Fatalf("dense Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := uint64(1); i < 20; i++ {
		if v, ok := tr.Get(i<<40 | i); !ok || v != int(i+10000) {
			t.Fatalf("sparse Get = %d,%v", v, ok)
		}
	}
	if tr.Len() != 1019 {
		t.Fatalf("Len = %d, want 1019", tr.Len())
	}
}

func TestRangeOrdered(t *testing.T) {
	tr := newTree(t)
	keys := []uint64{5, 1, 900, 37, 1 << 20, 0, 42}
	for _, k := range keys {
		tr.Set(k, int(k))
	}
	var got []uint64
	tr.Range(func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("Range pair %d=%d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Range out of order: %v", got)
		}
	}
	// Early stop.
	n := 0
	tr.Range(func(uint64, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}

func TestHandle(t *testing.T) {
	tr := newTree(t)
	tr.Set(3, 30)
	h := tr.NewHandle()
	defer h.Close()
	if v, ok := h.Get(3); !ok || v != 30 {
		t.Fatalf("handle Get = %d,%v", v, ok)
	}
}

func TestQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint32 // mixed magnitudes via shifting below
		Amt  uint8
	}
	check := func(ops []op) bool {
		tr := New[int](nil)
		defer tr.Close()
		model := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key) << (o.Amt % 32) // spread across heights
			switch o.Kind % 4 {
			case 0, 1:
				_, existed := model[k]
				if tr.Set(k, int(o.Amt)) == existed {
					return false
				}
				model[k] = int(o.Amt)
			case 2:
				_, existed := model[k]
				if tr.Delete(k) != existed {
					return false
				}
				delete(model, k)
			case 3:
				wantV, want := model[k]
				gotV, got := tr.Get(k)
				if got != want || (got && gotV != wantV) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if got, ok := tr.Get(k); !ok || got != v {
				return false
			}
		}
		seen := 0
		tr.Range(func(k uint64, v int) bool {
			if model[k] != v {
				return false
			}
			seen++
			return true
		})
		return seen == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTortureStableReaders: lock-free lookups of a stable key set
// must never miss while a writer churns other keys (forcing height
// changes and pruning) — the same contract as the hash table's.
func TestTortureStableReaders(t *testing.T) {
	tr := newTree(t)
	const stable = 512
	for i := uint64(0); i < stable; i++ {
		tr.Set(i, int(i))
	}

	stop := make(chan struct{})
	var misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					misses.Add(1)
				}
			}
		}(int64(g))
	}

	rng := rand.New(rand.NewSource(99))
	deadline := time.Now().Add(800 * time.Millisecond)
	for time.Now().Before(deadline) {
		k := stable + uint64(rng.Intn(1<<20))<<uint(rng.Intn(40))
		tr.Set(k, 1)
		if rng.Intn(2) == 0 {
			tr.Delete(k)
		}
	}
	close(stop)
	wg.Wait()
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d lookups missed stable keys during churn", n)
	}
}

func TestSharedDomain(t *testing.T) {
	dom := rcu.NewDomain()
	defer dom.Close()
	tr := New[int](dom)
	defer tr.Close()
	tr.Set(1, 1)
	if tr.Domain() != dom {
		t.Fatal("Domain() should return the shared domain")
	}
	// Closing the tree must not close the shared domain.
	tr.Close()
	dom.Synchronize() // would panic/hang on a closed domain
}

func TestShrinkUsesGracePeriods(t *testing.T) {
	dom := rcu.NewDomain()
	defer dom.Close()
	tr := New[int](dom)
	defer tr.Close()
	tr.Set(1, 1)
	tr.Set(1<<40, 2)
	before := dom.Stats().GracePeriods
	tr.Delete(1 << 40) // forces height shrink
	if after := dom.Stats().GracePeriods; after <= before {
		t.Fatal("height shrink did not wait for readers")
	}
}
