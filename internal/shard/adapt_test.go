package shard

import (
	"testing"
	"time"

	"rphash/internal/adapt"
)

// TestMapAdaptDefaultOn: a plain Map runs one maintenance controller
// per shard table and aggregates their stats; WithAdapt(nil) pins
// maintenance off.
func TestMapAdaptDefaultOn(t *testing.T) {
	m := NewUint64[int](WithShards(4))
	defer m.Close()
	if !m.AdaptOn() {
		t.Fatal("AdaptOn() = false on a default Map")
	}
	st, ok := m.AdaptStats()
	if !ok {
		t.Fatal("AdaptStats() not ok on a default Map")
	}
	// Each shard contributes its stripe count to the aggregate.
	wantStripes := 0
	for i := 0; i < m.NumShards(); i++ {
		wantStripes += m.Shard(i).Stripes()
	}
	if st.Stripes != wantStripes {
		t.Fatalf("aggregate Adapt.Stripes = %d, want %d (sum over shards)", st.Stripes, wantStripes)
	}
	if ms := m.DetailedStats(); !ms.AdaptOn || ms.Adapt.Stripes != wantStripes {
		t.Fatalf("DetailedStats().Adapt = %+v (on=%v), want stripes %d", ms.Adapt, ms.AdaptOn, wantStripes)
	}

	off := NewUint64[int](WithShards(2), WithAdapt(nil))
	defer off.Close()
	if off.AdaptOn() {
		t.Fatal("AdaptOn() = true with WithAdapt(nil)")
	}
	if _, ok := off.AdaptStats(); ok {
		t.Fatal("AdaptStats() ok with WithAdapt(nil)")
	}
	if ms := off.DetailedStats(); ms.AdaptOn {
		t.Fatal("DetailedStats().AdaptOn = true with WithAdapt(nil)")
	}
}

// TestMapAdaptControllersSample: a custom fast-sampling config is
// passed through to every shard's controller — the aggregate sample
// counter climbs across all of them — and Close stops the
// controllers (indirectly: it must not hang or race; run with -race).
func TestMapAdaptControllersSample(t *testing.T) {
	cfg := adapt.DefaultConfig()
	cfg.Interval = 2 * time.Millisecond
	m := NewUint64[int](WithShards(2), WithAdapt(cfg))
	for i := uint64(0); i < 1000; i++ {
		m.Set(i, int(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := m.AdaptStats()
		if !ok {
			t.Fatal("AdaptStats() not ok")
		}
		if st.Samples >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controllers never sampled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.Close()
}
