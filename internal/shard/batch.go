// Batched operations over the sharded map. A per-key Get pays a hash,
// a shard dispatch, and a reader-section entry/exit; a per-key Set
// additionally locks its key's writer stripe. When callers arrive
// with many keys at once the map can do markedly better: hash every
// key once, group keys by shard with a reusable per-call scratch (no
// allocation after warm-up), then enter ONE reader section per
// touched shard for reads and hand each shard its whole group for
// writes — the table applies the group in sorted-stripe order,
// locking each touched stripe once (core.Table.SetBatchHashed). For
// a B-key batch over S shards with E effective stripes per shard,
// that replaces B section entries with at most min(B, S) and B lock
// round-trips with at most min(B, S·E).
package shard

// batchScratch is the reusable per-call workspace for batch
// operations: hashes, the per-shard index lists (head/next form a
// linked list of batch positions per shard), and reorder buffers for
// the write paths. One scratch serves one call; concurrent calls each
// take their own from the pool.
type batchScratch[K comparable, V any] struct {
	hs      []uint64
	head    []int32 // per shard: first batch index, -1 = none
	next    []int32 // per batch index: next index on the same shard
	touched []int32 // shard indices with at least one key
	ks      []K     // reordered keys, grouped by shard (write paths)
	vs      []V     // reordered values (SetBatch)
	ohs     []uint64
}

// scratch returns a workspace sized for n keys.
func (m *Map[K, V]) scratch(n int) *batchScratch[K, V] {
	sc, _ := m.scratchPool.Get().(*batchScratch[K, V])
	if sc == nil {
		sc = &batchScratch[K, V]{head: make([]int32, len(m.shards))}
		for i := range sc.head {
			sc.head[i] = -1
		}
	}
	if cap(sc.hs) < n {
		sc.hs = make([]uint64, n)
	}
	if cap(sc.next) < n {
		sc.next = make([]int32, n)
	}
	return sc
}

// release returns a workspace to the pool. Key/value reorder buffers
// are cleared first so pooled scratch never pins caller data.
func (m *Map[K, V]) release(sc *batchScratch[K, V]) {
	clear(sc.ks)
	clear(sc.vs)
	sc.touched = sc.touched[:0]
	m.scratchPool.Put(sc)
}

// group builds the per-shard linked lists for hs[:n]. Iterating in
// reverse and prepending leaves each shard's list in ascending batch
// order, which the write paths rely on for last-write-wins semantics
// on duplicate keys. head entries are reset by ungroup.
func (m *Map[K, V]) group(sc *batchScratch[K, V], hs []uint64) {
	next, head := sc.next[:len(hs)], sc.head
	for i := len(hs) - 1; i >= 0; i-- {
		s := int32(hs[i] >> m.shift)
		if head[s] < 0 {
			sc.touched = append(sc.touched, s)
		}
		next[i] = head[s]
		head[s] = int32(i)
	}
}

// ungroup resets the touched head entries so the scratch can be
// pooled without clearing the whole (shard-count-sized) head array.
func (sc *batchScratch[K, V]) ungroup() {
	for _, s := range sc.touched {
		sc.head[s] = -1
	}
	sc.touched = sc.touched[:0]
}

// GetBatch looks up ks[i] into vals[i] and oks[i] for every i. Keys
// are hashed once, grouped by shard, and each touched shard's
// lookups run inside one read-side critical section — at most
// NumShards section entries for the whole batch, against len(ks) for
// individual Gets. len(vals) and len(oks) must equal len(ks); vals[i]
// is the zero value where oks[i] is false.
//
// Per-key semantics are exactly Get's. The batch is not a snapshot:
// concurrent writers may land between shard groups (and between two
// keys of one group).
func (m *Map[K, V]) GetBatch(ks []K, vals []V, oks []bool) {
	if len(vals) != len(ks) || len(oks) != len(ks) {
		panic("shard: GetBatch output length mismatch")
	}
	if len(ks) == 0 {
		return
	}
	sc := m.scratch(len(ks))
	hs := sc.hs[:len(ks)]
	for i := range ks {
		hs[i] = m.hash(ks[i])
	}
	m.getBatchGrouped(sc, hs, ks, vals, oks)
	m.release(sc)
}

// GetBatchHashed is GetBatch with the keys' hashes precomputed; hs[i]
// must equal the map's hash of ks[i]. Front-ends that hash once
// (internal/cache) pass the hashes through.
func (m *Map[K, V]) GetBatchHashed(hs []uint64, ks []K, vals []V, oks []bool) {
	if len(hs) != len(ks) || len(vals) != len(ks) || len(oks) != len(ks) {
		panic("shard: GetBatchHashed length mismatch")
	}
	if len(ks) == 0 {
		return
	}
	sc := m.scratch(len(ks))
	m.getBatchGrouped(sc, hs, ks, vals, oks)
	m.release(sc)
}

// getBatchGrouped is the shared read path: group, then one reader
// section per touched shard. The pooled reader is acquired once for
// the whole batch; each shard group brackets its lookups with
// Lock/Unlock so no section outlives its group. The section count is
// accumulated locally and folded into the striped counter once per
// batch, after the last section — the hot loop performs no shared
// atomic read-modify-writes.
func (m *Map[K, V]) getBatchGrouped(sc *batchScratch[K, V], hs []uint64, ks []K, vals []V, oks []bool) {
	m.group(sc, hs)
	r := m.dom.AcquireReader()
	sections := uint64(0)
	for _, s := range sc.touched {
		t := m.shards[s]
		r.Lock()
		sections++
		for i := sc.head[s]; i >= 0; i = sc.next[i] {
			vals[i], oks[i] = t.LookupInReader(hs[i], ks[i])
		}
		r.Unlock()
	}
	m.dom.ReleaseReader(r)
	m.batchSections.AddN(int(hs[0]), sections)
	sc.ungroup()
}

// BatchSections returns the cumulative number of read-side critical
// sections entered by GetBatch/GetBatchHashed. It is an observability
// and test hook: a B-key batch must account for at most
// min(B, NumShards) sections, which is the amortization the batch
// path exists to provide.
func (m *Map[K, V]) BatchSections() uint64 { return m.batchSections.Total() }

// SetBatch upserts every (ks[i], vs[i]) pair, returning how many keys
// were newly inserted. Keys are hashed once and grouped by shard;
// each shard applies its group with sorted-stripe locking
// (core.Table.SetBatchHashed) — every touched writer stripe locked
// once for all of its keys — so concurrent writers on other stripes
// keep flowing while the batch lands. Groups commit in shard order —
// the batch is not atomic across shards — and duplicate keys within
// the batch apply in order (last value wins).
func (m *Map[K, V]) SetBatch(ks []K, vs []V) (inserted int) {
	if len(vs) != len(ks) {
		panic("shard: SetBatch length mismatch")
	}
	if len(ks) == 0 {
		return 0
	}
	sc := m.scratch(len(ks))
	hs := sc.hs[:len(ks)]
	for i := range ks {
		hs[i] = m.hash(ks[i])
	}
	m.group(sc, hs)
	// Guard each reorder buffer independently: a pooled scratch may
	// have been grown by DeleteBatch, which sizes ks/ohs but not vs.
	if cap(sc.ks) < len(ks) {
		sc.ks = make([]K, len(ks))
	}
	if cap(sc.vs) < len(ks) {
		sc.vs = make([]V, len(ks))
	}
	if cap(sc.ohs) < len(ks) {
		sc.ohs = make([]uint64, len(ks))
	}
	ord, ovs, ohs := sc.ks[:len(ks)], sc.vs[:len(ks)], sc.ohs[:len(ks)]
	for _, s := range sc.touched {
		n := 0
		for i := sc.head[s]; i >= 0; i = sc.next[i] {
			ohs[n], ord[n], ovs[n] = hs[i], ks[i], vs[i]
			n++
		}
		inserted += m.shards[s].SetBatchHashed(ohs[:n], ord[:n], ovs[:n])
	}
	sc.ungroup()
	m.release(sc)
	return inserted
}

// DeleteBatch removes every key in ks, returning how many were
// present. Grouping and stripe-lock amortization match SetBatch;
// each shard's unlinked nodes retire through one grace period rather
// than one per key.
func (m *Map[K, V]) DeleteBatch(ks []K) (removed int) {
	if len(ks) == 0 {
		return 0
	}
	sc := m.scratch(len(ks))
	hs := sc.hs[:len(ks)]
	for i := range ks {
		hs[i] = m.hash(ks[i])
	}
	m.group(sc, hs)
	if cap(sc.ks) < len(ks) {
		sc.ks = make([]K, len(ks))
	}
	if cap(sc.ohs) < len(ks) {
		sc.ohs = make([]uint64, len(ks))
	}
	ord, ohs := sc.ks[:len(ks)], sc.ohs[:len(ks)]
	for _, s := range sc.touched {
		n := 0
		for i := sc.head[s]; i >= 0; i = sc.next[i] {
			ohs[n], ord[n] = hs[i], ks[i]
			n++
		}
		removed += m.shards[s].DeleteBatchHashed(ohs[:n], ord[:n])
	}
	sc.ungroup()
	m.release(sc)
	return removed
}

// RangeChunked calls fn for every element until fn returns false,
// walking shards in order with core.Table.RangeChunked semantics per
// shard: bounded reader sections, fn invoked outside them, cursor
// rescaling (possible skips/repeats) if a shard resizes
// mid-traversal. There is no cross-shard snapshot.
func (m *Map[K, V]) RangeChunked(chunk int, fn func(K, V) bool) {
	cont := true
	for _, s := range m.shards {
		if !cont {
			return
		}
		s.RangeChunked(chunk, func(k K, v V) bool {
			cont = fn(k, v)
			return cont
		})
	}
}
