package shard

import (
	"sync"
	"testing"

	"rphash/internal/workload"
)

// benchMap builds a preloaded 8-shard map for the batch benchmarks.
func benchMap(b *testing.B) *Map[uint64, int] {
	b.Helper()
	m := NewUint64[int](WithShards(8), WithInitialBuckets(16384))
	for i := uint64(0); i < 8192; i++ {
		m.Set(workload.NewUniform(16384, 7).Key(), int(i)) // mixed population
		m.Set(i, int(i))
	}
	return m
}

// runBatch100 drives b.N lookups (in groups of 100) across `workers`
// goroutines; batched selects GetBatch vs 100 individual Gets.
func runBatch100(b *testing.B, workers int, batched bool) {
	m := benchMap(b)
	defer m.Close()
	const batch = 100
	groups := b.N / (workers * batch)
	if groups == 0 {
		groups = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := workload.NewUniform(16384, uint64(id)*0x9e3779b9+1)
			ks := make([]uint64, batch)
			vals := make([]int, batch)
			oks := make([]bool, batch)
			for g := 0; g < groups; g++ {
				for i := range ks {
					ks[i] = gen.Key()
				}
				if batched {
					m.GetBatch(ks, vals, oks)
				} else {
					for i := range ks {
						vals[i], oks[i] = m.Get(ks[i])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	ops := float64(groups * workers * batch)
	if el := b.Elapsed(); el > 0 {
		b.ReportMetric(ops/el.Seconds()/1e6, "Mlookups/s")
	}
}

// BenchmarkMapGetBatch100 is the acceptance benchmark: 100-key
// GetBatch at 8 goroutines. Compare against BenchmarkMapGetSingle100
// (the same 100 keys as individual Gets) — the batch path amortizes
// reader-section entry and pooled-reader round-trips over the group
// and must come out well ahead.
func BenchmarkMapGetBatch100(b *testing.B)  { runBatch100(b, 8, true) }
func BenchmarkMapGetSingle100(b *testing.B) { runBatch100(b, 8, false) }
