package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rphash/internal/core"
)

func TestMapBatchOps(t *testing.T) {
	m := NewUint64[int](WithShards(8), WithInitialBuckets(256))
	defer m.Close()

	ks := make([]uint64, 0, 300)
	vs := make([]int, 0, 300)
	for i := uint64(0); i < 300; i++ {
		ks = append(ks, i*0x9e3779b97f4a7c15) // spread across shards
		vs = append(vs, int(i))
	}
	if inserted := m.SetBatch(ks, vs); inserted != 300 {
		t.Fatalf("SetBatch inserted = %d, want 300", inserted)
	}
	if m.Len() != 300 {
		t.Fatalf("Len = %d, want 300", m.Len())
	}

	// Batch read: all present, values intact, plus some absent keys.
	probe := append(append([]uint64{}, ks...), 1, 2, 3)
	vals := make([]int, len(probe))
	oks := make([]bool, len(probe))
	m.GetBatch(probe, vals, oks)
	for i := range ks {
		if !oks[i] || vals[i] != vs[i] {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", probe[i], vals[i], oks[i], vs[i])
		}
	}
	for i := len(ks); i < len(probe); i++ {
		if oks[i] {
			t.Fatalf("absent key %d reported present", probe[i])
		}
	}

	// Overwrites don't count as inserts; duplicates apply last-wins.
	if inserted := m.SetBatch([]uint64{ks[0], ks[0]}, []int{-1, -2}); inserted != 0 {
		t.Fatalf("overwrite SetBatch inserted = %d, want 0", inserted)
	}
	if v, _ := m.Get(ks[0]); v != -2 {
		t.Fatalf("duplicate-key batch: Get = %d, want -2 (last write wins)", v)
	}

	if removed := m.DeleteBatch(append([]uint64{1}, ks[:100]...)); removed != 100 {
		t.Fatalf("DeleteBatch removed = %d, want 100", removed)
	}
	if m.Len() != 200 {
		t.Fatalf("Len after DeleteBatch = %d, want 200", m.Len())
	}
}

// TestBatchScratchReuseAcrossOps is the regression test for pooled
// scratch reuse between different batch operations: DeleteBatch grows
// only the key/hash reorder buffers, so a following SetBatch must
// size its value buffer independently rather than assume one guard
// covers all three (it used to panic on the nil value buffer here).
func TestBatchScratchReuseAcrossOps(t *testing.T) {
	m := NewUint64[int](WithShards(4), WithInitialBuckets(128))
	defer m.Close()
	ks := make([]uint64, 100)
	vs := make([]int, 100)
	for i := range ks {
		ks[i] = uint64(i) * 0x9e3779b97f4a7c15
		vs[i] = i
	}
	m.DeleteBatch(ks) // seeds the pooled scratch with ks/ohs but no vs
	if inserted := m.SetBatch(ks[:50], vs[:50]); inserted != 50 {
		t.Fatalf("SetBatch after DeleteBatch inserted %d, want 50", inserted)
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d, want 50", m.Len())
	}
}

// TestGetBatchReaderSections asserts the amortization contract: a
// B-key batch enters at most min(B, NumShards) read-side critical
// sections — not one per key.
func TestGetBatchReaderSections(t *testing.T) {
	m := NewUint64[int](WithShards(8), WithInitialBuckets(256))
	defer m.Close()
	ks := make([]uint64, 100)
	vals := make([]int, 100)
	oks := make([]bool, 100)
	for i := range ks {
		ks[i] = uint64(i) * 0x9e3779b97f4a7c15
		m.Set(ks[i], i)
	}

	before := m.BatchSections()
	m.GetBatch(ks, vals, oks)
	sections := m.BatchSections() - before
	if sections == 0 || sections > uint64(m.NumShards()) {
		t.Fatalf("100-key GetBatch entered %d reader sections, want 1..%d", sections, m.NumShards())
	}

	// A batch smaller than the shard count enters at most B sections.
	before = m.BatchSections()
	m.GetBatch(ks[:3], vals[:3], oks[:3])
	if sections := m.BatchSections() - before; sections > 3 {
		t.Fatalf("3-key GetBatch entered %d reader sections, want <= 3", sections)
	}
}

func TestMapRangeChunked(t *testing.T) {
	m := NewUint64[int](WithShards(4), WithInitialBuckets(128))
	defer m.Close()
	const n = 500
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}
	seen := make(map[uint64]bool)
	m.RangeChunked(16, func(k uint64, v int) bool {
		if v != int(k) {
			t.Fatalf("key %d carried %d", k, v)
		}
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("visited %d keys, want %d", len(seen), n)
	}
}

// TestBatchTortureUnderChurn is the -race torture test for the batch
// paths: batch gets, batch writes, single-key writes, and per-shard
// auto-resizes all interleave. The invariant: a batch result must
// never claim an always-present key is absent, nor a never-present
// key is present.
func TestBatchTortureUnderChurn(t *testing.T) {
	m := NewUint64[int](
		WithShards(4),
		WithInitialBuckets(64),
		WithPolicy(core.Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 64}),
	)
	defer m.Close()

	const (
		stableN = 512
		churnN  = 2048
		absent  = uint64(1) << 40 // keys >= this are never inserted
	)
	stable := make([]uint64, stableN)
	vsStable := make([]int, stableN)
	for i := range stable {
		stable[i] = uint64(i)
		vsStable[i] = i
	}
	m.SetBatch(stable, vsStable)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64

	// Churn writers: single-key and batch mutations over the churn
	// range, forcing inserts, deletes, and auto-resizes across shards.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ks := make([]uint64, 64)
			vs := make([]int, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range ks {
					ks[i] = stableN + uint64(rng.Intn(churnN))
					vs[i] = int(ks[i])
				}
				if rng.Intn(2) == 0 {
					m.SetBatch(ks, vs)
					m.DeleteBatch(ks[:32])
				} else {
					for i := 0; i < 16; i++ {
						m.Set(ks[i], vs[i])
					}
					for i := 0; i < 8; i++ {
						m.Delete(ks[i])
					}
				}
			}
		}(int64(w) + 1)
	}

	// Explicit resizer on top of the auto-resize policy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Resize(1024)
			m.Resize(64)
		}
	}()

	// Batch readers: mixed stable/churn/absent batches.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ks := make([]uint64, 96)
			vals := make([]int, 96)
			oks := make([]bool, 96)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range ks {
					switch i % 3 {
					case 0:
						ks[i] = uint64(rng.Intn(stableN)) // always present
					case 1:
						ks[i] = stableN + uint64(rng.Intn(churnN)) // may flap
					default:
						ks[i] = absent + uint64(rng.Intn(churnN)) // never present
					}
				}
				m.GetBatch(ks, vals, oks)
				for i := range ks {
					switch {
					case ks[i] < stableN:
						if !oks[i] || vals[i] != int(ks[i]) {
							bad.Add(1)
						}
					case ks[i] >= absent:
						if oks[i] {
							bad.Add(1)
						}
					}
				}
			}
		}(int64(r) + 100)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d batch lookups violated the stable/absent invariant", n)
	}
}

// TestMapRangeDuringResize is the regression test for Map.Range under
// a concurrent resize: every key that is present for the whole
// traversal must be visited exactly once per pass (foreign mid-unzip
// nodes are filtered by home bucket), with its correct value.
func TestMapRangeDuringResize(t *testing.T) {
	m := NewUint64[int](WithShards(4), WithInitialBuckets(64))
	defer m.Close()
	const n = 2048
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Resize(4096)
			m.Resize(64)
		}
	}()

	seen := make([]int, n)
	for pass := 0; pass < 10; pass++ {
		clear(seen)
		m.Range(func(k uint64, v int) bool {
			if k >= n {
				t.Errorf("unknown key %d", k)
				return false
			}
			if v != int(k) {
				t.Errorf("key %d carried %d", k, v)
				return false
			}
			seen[k]++
			return true
		})
		if t.Failed() {
			break
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("pass %d: key %d visited %d times, want exactly 1", pass, k, c)
			}
		}
	}
	close(stop)
	<-done
}
