// Package shard provides a sharded front-end over the relativistic
// hash table: a Map partitions its keys across a power-of-two array
// of core.Table shards, while the read side stays exactly the
// paper's: wait-free, lock-free, retry-free.
//
// Since the core table gained per-bucket writer stripes, a single
// table already scales with concurrent writers; shards are no longer
// the primary write-scaling mechanism. What sharding still buys:
// resize isolation (a resize's brief all-stripes phases and
// migration batches stall only 1/Nth of the keyspace, and shards
// resize independently and concurrently), shorter chains per resize
// step, and more total write parallelism than one table's stripe
// array under extreme writer counts. The default shard count is
// accordingly modest — see DefaultShards — with WithShards as the
// escape hatch in either direction.
//
// Shard routing uses the HIGH bits of the same 64-bit hash the tables
// themselves use. Bucket selection inside a shard masks the LOW bits,
// so the two never alias: every shard sees a well-mixed low-bit
// distribution regardless of the shard count, and per-shard bucket
// masks stay balanced.
//
// All shards share one rcu.Domain. A ReadHandle therefore registers a
// single reader that spans the whole map, grace periods are amortized
// across shards (one Synchronize covers retirements from every
// shard), and a resize in one shard never waits on machinery private
// to another.
package shard

import (
	"runtime"
	"sync"

	"rphash/internal/adapt"
	"rphash/internal/core"
	"rphash/internal/hashfn"
	"rphash/internal/obs"
	"rphash/internal/rcu"
	"rphash/internal/stats"
)

// Map is a sharded relativistic hash map. Create with New; the zero
// value is not usable.
type Map[K comparable, V any] struct {
	shards []*core.Table[K, V]
	dom    *rcu.Domain
	hash   func(K) uint64
	shift  uint // shard index = hash >> shift (high bits)
	ownDom bool
	// adaptOn records whether the shards run adapt controllers (the
	// default; WithAdapt(nil) disables).
	adaptOn bool

	// scratchPool recycles batch-operation workspaces (see batch.go).
	scratchPool sync.Pool
	// batchSections counts reader sections entered by batch gets — the
	// observability/test hook behind BatchSections. Striped so batch
	// readers on different cores don't ping-pong one counter line.
	batchSections stats.Striped
}

type config struct {
	shards   uint64
	initial  uint64 // total across shards; 0 = core default per shard
	stripes  int
	engine   string
	policy   core.Policy
	dom      *rcu.Domain
	adapt    *adapt.Config
	adaptSet bool
	obsv     *obs.Observer
}

// Option configures a Map at construction.
type Option func(*config)

// WithShards sets the shard count (rounded up to a power of two,
// minimum 1), overriding the DefaultShards heuristic in either
// direction: more shards for resize-heavy or extremely write-hot
// workloads, one shard to get a single table with Map conveniences.
func WithShards(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.shards = hashfn.NextPowerOfTwo(uint64(n))
	}
}

// WithDomain shares an existing RCU domain instead of creating one.
// Close will not close a shared domain.
func WithDomain(d *rcu.Domain) Option { return func(c *config) { c.dom = d } }

// WithInitialBuckets sets the total initial bucket count across all
// shards (each shard gets its share, rounded up to a power of two).
func WithInitialBuckets(total uint64) Option { return func(c *config) { c.initial = total } }

// WithPolicy installs an automatic resize policy. Load-factor
// watermarks are scale-free and apply to each shard as-is; MinBuckets
// is interpreted as a map-wide floor and divided across shards.
func WithPolicy(p core.Policy) Option { return func(c *config) { c.policy = p } }

// WithEngine selects every shard table's bucket representation (see
// core.WithEngine): core.EngineChain (the default) or core.EngineFlat.
// One engine serves the whole map; the choice is invisible above the
// core API.
func WithEngine(name string) Option { return func(c *config) { c.engine = name } }

// WithTableStripes sets each shard table's physical writer-stripe
// count (see core.WithStripes). The core default — a few stripes per
// core — is right for almost everyone; WithTableStripes(1) restores
// the paper's one-mutex-per-table writer model for ablations. Note
// that the Map's default adaptive maintenance (see WithAdapt) may
// retune the stripe count away from this value at runtime under
// sustained contention: a measurement or ablation that needs the
// shape FROZEN must combine it with WithAdapt(nil), as the
// repository's own benchmark engines do.
func WithTableStripes(n int) Option { return func(c *config) { c.stripes = n } }

// WithAdapt configures the adaptive maintenance controllers the Map
// runs — one per shard table, started at construction and stopped on
// Close. The default (option absent) is adapt.DefaultConfig():
// production maps retune their writer stripes and migration fan-out
// from live contention without being asked. WithAdapt(nil) pins
// maintenance off — reproducible-benchmark and ablation runs combine
// it with WithTableStripes to hold the shape fixed. A non-nil config
// overrides the sampling cadence, hysteresis thresholds, and bounds.
func WithAdapt(cfg *adapt.Config) Option {
	return func(c *config) { c.adapt, c.adaptSet = cfg, true }
}

// WithObserver wires every shard table — and the map's shared RCU
// domain — into an observability hub (see internal/obs and
// core.WithObserver). Each shard tags its events and histogram
// records with its shard index. nil (the default) keeps every
// instrumentation point at one pointer compare.
func WithObserver(o *obs.Observer) Option { return func(c *config) { c.obsv = o } }

// DefaultShards returns the default shard count for this process:
// one shard per ~4 cores (power of two, capped at 16). Before the
// core table had striped writer locks this was
// NextPowerOfTwo(GOMAXPROCS) — every core needed its own table
// mutex to scale writes. Now each table carries its own stripe
// array (a few stripes per core), so writer parallelism comes from
// stripes and shards are kept for resize isolation; a handful is
// enough, and fewer shards mean better per-table load statistics
// and fewer resize storms.
func DefaultShards() int {
	n := hashfn.NextPowerOfTwo(uint64(max(runtime.GOMAXPROCS(0)/4, 1)))
	if n > 16 {
		n = 16
	}
	return int(n)
}

// New creates a Map using hash to map keys to 64-bit hashes. The hash
// must be deterministic for the lifetime of the map and should mix
// both its high bits (shard routing) and low bits (bucket selection)
// well; the mixers in internal/hashfn qualify.
func New[K comparable, V any](hash func(K) uint64, opts ...Option) *Map[K, V] {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards == 0 {
		cfg.shards = uint64(DefaultShards())
	}

	m := &Map[K, V]{
		shards: make([]*core.Table[K, V], cfg.shards),
		hash:   hash,
		shift:  shardShift(cfg.shards),
	}
	if cfg.dom != nil {
		m.dom = cfg.dom
	} else {
		m.dom = rcu.NewDomain()
		m.ownDom = true
	}

	tblOpts := []core.Option{core.WithDomain(m.dom)}
	if cfg.initial > 0 {
		tblOpts = append(tblOpts, core.WithInitialBuckets(perShard(cfg.initial, cfg.shards)))
	}
	if cfg.stripes > 0 {
		tblOpts = append(tblOpts, core.WithStripes(cfg.stripes))
	}
	if cfg.engine != "" {
		tblOpts = append(tblOpts, core.WithEngine(cfg.engine))
	}
	p := cfg.policy
	if p.MinBuckets > 0 {
		p.MinBuckets = perShard(p.MinBuckets, cfg.shards)
	}
	if p != (core.Policy{}) {
		tblOpts = append(tblOpts, core.WithPolicy(p))
	}
	if !cfg.adaptSet {
		cfg.adapt = adapt.DefaultConfig()
	}
	if cfg.adapt != nil {
		// One controller per shard table, sharing the domain's Done
		// for prompt shutdown; core.Table.Close (called by Map.Close)
		// stops each.
		tblOpts = append(tblOpts, core.WithAdapt(cfg.adapt))
		m.adaptOn = true
	}
	for i := range m.shards {
		opts := tblOpts
		if cfg.obsv != nil {
			opts = append(opts[:len(opts):len(opts)],
				core.WithObserver(cfg.obsv), core.WithShardID(i))
		}
		m.shards[i] = core.New[K, V](hash, opts...)
	}
	return m
}

// AdaptOn reports whether the map runs adaptive maintenance
// controllers on its shard tables.
func (m *Map[K, V]) AdaptOn() bool { return m.adaptOn }

// AdaptStats aggregates the per-shard maintenance controllers'
// snapshots (counters sum, stripe totals sum, the hottest shard's
// contention rate wins); ok is false when maintenance is off.
func (m *Map[K, V]) AdaptStats() (adapt.Stats, bool) {
	if !m.adaptOn {
		return adapt.Stats{}, false
	}
	var agg adapt.Stats
	for _, s := range m.shards {
		if st, ok := s.AdaptStats(); ok {
			agg.Accumulate(st)
		}
	}
	return agg, true
}

// NewUint64 creates a map keyed by uint64 with the standard
// splitmix64 finalizer.
func NewUint64[V any](opts ...Option) *Map[uint64, V] {
	return New[uint64, V](func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, opts...)
}

// NewString creates a map keyed by string with seeded FNV-1a plus an
// avalanche finalizer.
func NewString[V any](opts ...Option) *Map[string, V] {
	return New[string, V](func(k string) uint64 { return hashfn.String(k, 0) }, opts...)
}

// shardShift returns the right-shift that extracts a shard index from
// the high bits of a 64-bit hash. For one shard the shift is 64,
// which Go defines to yield 0.
func shardShift(shards uint64) uint {
	shift := uint(64)
	for s := uint64(1); s < shards; s <<= 1 {
		shift--
	}
	return shift
}

// perShard divides a map-wide size across shards, rounding so no
// shard gets zero.
func perShard(total, shards uint64) uint64 {
	return max(hashfn.NextPowerOfTwo(total)/shards, 1)
}

// shardFor routes a hash to its shard.
func (m *Map[K, V]) shardFor(h uint64) *core.Table[K, V] {
	return m.shards[h>>m.shift]
}

// NumShards returns the shard count.
func (m *Map[K, V]) NumShards() int { return len(m.shards) }

// Shard exposes shard i's table (tests and stats tooling).
func (m *Map[K, V]) Shard(i int) *core.Table[K, V] { return m.shards[i] }

// Domain exposes the map's shared RCU domain.
func (m *Map[K, V]) Domain() *rcu.Domain { return m.dom }

// Hash exposes the map's hash of k, for front-ends (internal/cache)
// that hash once and drive the *Hashed entry points.
func (m *Map[K, V]) Hash(k K) uint64 { return m.hash(k) }

// ShardIndex routes a hash to its shard's index.
func (m *Map[K, V]) ShardIndex(h uint64) int { return int(h >> m.shift) }

// Get returns the value for k. Read-side cost is identical to a
// single table: one pooled reader section around one chain walk, plus
// a shift to pick the shard.
func (m *Map[K, V]) Get(k K) (V, bool) {
	return m.GetHashed(m.hash(k), k)
}

// GetHashed is Get with the key's hash precomputed; h must equal the
// map's hash of k.
func (m *Map[K, V]) GetHashed(h uint64, k K) (V, bool) {
	var v V
	var ok bool
	m.dom.Read(func() {
		v, ok = m.shardFor(h).LookupInReader(h, k)
	})
	return v, ok
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Set upserts k, returning true if it inserted. Writers to different
// shards — and, within a shard, to different writer stripes —
// proceed in parallel. The hash is computed once and passed through
// to the shard.
func (m *Map[K, V]) Set(k K, v V) bool {
	h := m.hash(k)
	return m.shardFor(h).SetHashed(h, k, v)
}

// Insert adds k only if absent; it reports whether it inserted.
func (m *Map[K, V]) Insert(k K, v V) bool {
	h := m.hash(k)
	return m.shardFor(h).InsertHashed(h, k, v)
}

// Replace updates k only if present; it reports whether it replaced.
func (m *Map[K, V]) Replace(k K, v V) bool {
	h := m.hash(k)
	return m.shardFor(h).ReplaceHashed(h, k, v)
}

// Swap upserts k and returns the value it displaced, if any.
func (m *Map[K, V]) Swap(k K, v V) (V, bool) {
	return m.SwapHashed(m.hash(k), k, v)
}

// SwapHashed is Swap with the key's hash precomputed.
func (m *Map[K, V]) SwapHashed(h uint64, k K, v V) (V, bool) {
	return m.shardFor(h).SwapHashed(h, k, v)
}

// Update runs a read-modify-write for k under its shard's writer
// stripe; see core.Table.Update for fn's contract.
func (m *Map[K, V]) Update(k K, fn func(cur V, present bool) (V, bool)) (prev V, hadPrev, stored bool) {
	return m.UpdateHashed(m.hash(k), k, fn)
}

// UpdateHashed is Update with the key's hash precomputed.
func (m *Map[K, V]) UpdateHashed(h uint64, k K, fn func(cur V, present bool) (V, bool)) (prev V, hadPrev, stored bool) {
	return m.shardFor(h).UpdateHashed(h, k, fn)
}

// CompareAndSwapValue publishes v for k only if match accepts the
// current value, without taking any lock; see
// core.Table.CompareAndSwapValue for the semantics and the caveats of
// mixing it with CompareAndDelete or Move on the same keys.
func (m *Map[K, V]) CompareAndSwapValue(k K, match func(V) bool, v V) (swapped, present bool) {
	return m.CompareAndSwapValueHashed(m.hash(k), k, match, v)
}

// CompareAndSwapValueHashed is CompareAndSwapValue with the key's
// hash precomputed.
func (m *Map[K, V]) CompareAndSwapValueHashed(h uint64, k K, match func(V) bool, v V) (swapped, present bool) {
	return m.shardFor(h).CompareAndSwapValueHashed(h, k, match, v)
}

// Delete removes k, reporting whether it was present.
func (m *Map[K, V]) Delete(k K) bool {
	h := m.hash(k)
	return m.shardFor(h).DeleteHashed(h, k)
}

// CompareAndDelete removes k only if match accepts its current value
// (nil match accepts anything), returning the removed value. See
// core.Table.CompareAndDelete for the guarantee.
func (m *Map[K, V]) CompareAndDelete(k K, match func(V) bool) (V, bool) {
	return m.CompareAndDeleteHashed(m.hash(k), k, match)
}

// CompareAndDeleteHashed is CompareAndDelete with the key's hash
// precomputed.
func (m *Map[K, V]) CompareAndDeleteHashed(h uint64, k K, match func(V) bool) (V, bool) {
	return m.shardFor(h).CompareAndDeleteHashed(h, k, match)
}

// Move renames oldKey to newKey; it fails if oldKey is absent or
// newKey exists. Within one shard it is the table's atomic move. A
// cross-shard move publishes the newKey copy before unlinking the
// oldKey original, so the value is never absent — but the two steps
// take two shard mutexes in sequence, so a writer racing on the SAME
// keys may interleave (e.g. a concurrent Set(oldKey) between copy and
// unlink is lost). Distinct-key operations are unaffected.
func (m *Map[K, V]) Move(oldKey, newKey K) bool {
	oh, nh := m.hash(oldKey), m.hash(newKey)
	src, dst := m.shardFor(oh), m.shardFor(nh)
	if src == dst {
		return src.Move(oldKey, newKey)
	}
	v, ok := src.Get(oldKey)
	if !ok {
		return false
	}
	if !dst.InsertHashed(nh, newKey, v) {
		return false
	}
	src.DeleteHashed(oh, oldKey)
	return true
}

// Len returns the element count (exact with respect to completed
// updates).
func (m *Map[K, V]) Len() int {
	n := 0
	for _, s := range m.shards {
		n += s.Len()
	}
	return n
}

// Buckets returns the total bucket count across shards.
func (m *Map[K, V]) Buckets() int {
	n := 0
	for _, s := range m.shards {
		n += s.Buckets()
	}
	return n
}

// Resize retargets the total bucket count, dividing it across shards.
// Shards resize sequentially; lookups are unperturbed throughout.
func (m *Map[K, V]) Resize(total uint64) {
	per := perShard(total, uint64(len(m.shards)))
	for _, s := range m.shards {
		s.Resize(per)
	}
}

// Range calls fn for every element until fn returns false, walking
// shards in order. Per-shard semantics match Table.Range; there is no
// cross-shard snapshot.
func (m *Map[K, V]) Range(fn func(K, V) bool) {
	cont := true
	for _, s := range m.shards {
		if !cont {
			return
		}
		s.Range(func(k K, v V) bool {
			cont = fn(k, v)
			return cont
		})
	}
}

// Keys returns a snapshot of the keys (order unspecified).
func (m *Map[K, V]) Keys() []K {
	out := make([]K, 0, m.Len())
	m.Range(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// accumulate folds one shard's snapshot into an aggregate: counters
// sum, MaxChain is the max over shards.
func accumulate(agg *core.Stats, st core.Stats) {
	agg.Len += st.Len
	agg.Buckets += st.Buckets
	agg.Stripes += st.Stripes
	agg.EffectiveStripes += st.EffectiveStripes
	agg.StripeAcquires += st.StripeAcquires
	agg.StripeContended += st.StripeContended
	agg.StripeRetunes += st.StripeRetunes
	agg.Inserts += st.Inserts
	agg.Deletes += st.Deletes
	agg.Moves += st.Moves
	agg.Expands += st.Expands
	agg.Shrinks += st.Shrinks
	agg.UnzipPasses += st.UnzipPasses
	agg.UnzipCuts += st.UnzipCuts
	agg.UnzipParallelPasses += st.UnzipParallelPasses
	agg.AutoGrows += st.AutoGrows
	agg.AutoShrinks += st.AutoShrinks
	agg.CASFastInserts += st.CASFastInserts
	agg.CASFallbacks += st.CASFallbacks
	agg.CASUndos += st.CASUndos
	agg.ValueCASSwaps += st.ValueCASSwaps
	agg.UnzipBacklog += st.UnzipBacklog
	agg.MigrationUnits += st.MigrationUnits
	agg.MigrationDone += st.MigrationDone
	agg.MigrationRate += st.MigrationRate
	agg.FlatSampledGroups += st.FlatSampledGroups
	for i := range agg.FlatOccupancy {
		agg.FlatOccupancy[i] += st.FlatOccupancy[i]
	}
	agg.FlatSpilledGroups += st.FlatSpilledGroups
	agg.FlatSpillEntries += st.FlatSpillEntries
	if st.FlatMaxSpill > agg.FlatMaxSpill {
		agg.FlatMaxSpill = st.FlatMaxSpill
	}
	if st.UnzipWorkers > agg.UnzipWorkers {
		agg.UnzipWorkers = st.UnzipWorkers
	}
	if st.MaxChain > agg.MaxChain {
		agg.MaxChain = st.MaxChain
	}
}

// Stats aggregates per-shard table stats: counters sum, MaxChain is
// the max over shards, LoadFactor is recomputed map-wide.
func (m *Map[K, V]) Stats() core.Stats {
	var agg core.Stats
	for _, s := range m.shards {
		accumulate(&agg, s.Stats())
	}
	if agg.Buckets > 0 {
		agg.LoadFactor = float64(agg.Len) / float64(agg.Buckets)
	}
	return agg
}

// CounterStats aggregates per-shard counter snapshots without any
// bucket walk (see core.Table.CounterStats): O(shards × stripes)
// regardless of map size, so metrics scrapes can poll it freely.
// MaxChain is 0.
func (m *Map[K, V]) CounterStats() core.Stats {
	var agg core.Stats
	for _, s := range m.shards {
		accumulate(&agg, s.CounterStats())
	}
	if agg.Buckets > 0 {
		agg.LoadFactor = float64(agg.Len) / float64(agg.Buckets)
	}
	return agg
}

// MapStats is the sharded map's observability snapshot: the map-wide
// aggregate (embedded) plus each shard's own table snapshot, so
// operators can see per-shard bucket totals, load factors, and resize
// counts — imbalance, resize storms, and hot shards are all visible
// here rather than buried in internal counters.
type MapStats struct {
	core.Stats              // map-wide aggregate
	PerShard   []core.Stats // shard i's table snapshot
	// Adapt aggregates the per-shard maintenance controllers'
	// snapshots; AdaptOn is false (and Adapt zero) when maintenance
	// is disabled (WithAdapt(nil)).
	Adapt   adapt.Stats
	AdaptOn bool
}

// DetailedStats gathers a MapStats snapshot. It walks every bucket of
// every shard (for MaxChain); on huge maps prefer Stats-free
// monitoring via Len/Buckets.
func (m *Map[K, V]) DetailedStats() MapStats {
	ms := MapStats{PerShard: make([]core.Stats, len(m.shards))}
	for i, s := range m.shards {
		ms.PerShard[i] = s.Stats()
		accumulate(&ms.Stats, ms.PerShard[i])
	}
	if ms.Buckets > 0 {
		ms.LoadFactor = float64(ms.Len) / float64(ms.Buckets)
	}
	ms.Adapt, ms.AdaptOn = m.AdaptStats()
	return ms
}

// Close releases the shards and, if the map created it, the shared
// domain. The map must not be used afterwards.
func (m *Map[K, V]) Close() {
	for _, s := range m.shards {
		s.Close() // no-op per shard: the domain is shared
	}
	if m.ownDom {
		m.dom.Close()
	}
}

// ReadHandle is a per-goroutine lookup handle spanning every shard:
// one registered reader on the shared domain. Not safe for concurrent
// use; create one per reading goroutine and Close it when done.
type ReadHandle[K comparable, V any] struct {
	m *Map[K, V]
	r *rcu.Reader
}

// NewReadHandle registers a map-wide reader for lookup hot paths.
func (m *Map[K, V]) NewReadHandle() *ReadHandle[K, V] {
	return &ReadHandle[K, V]{m: m, r: m.dom.Register()}
}

// Get is the hot-path lookup: two reader-local atomic stores around a
// shard pick and a chain walk — the same cost as a single-table
// ReadHandle.
func (h *ReadHandle[K, V]) Get(k K) (V, bool) {
	hv := h.m.hash(k)
	h.r.Lock()
	v, ok := h.m.shardFor(hv).LookupInReader(hv, k)
	h.r.Unlock()
	return v, ok
}

// Contains reports presence via the handle's reader.
func (h *ReadHandle[K, V]) Contains(k K) bool {
	_, ok := h.Get(k)
	return ok
}

// Close deregisters the handle's reader.
func (h *ReadHandle[K, V]) Close() { h.r.Close() }
