package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rphash/internal/core"
	"rphash/internal/hashfn"
	"rphash/internal/rcu"
)

func newM(t testing.TB, opts ...Option) *Map[uint64, int] {
	t.Helper()
	m := NewUint64[int](opts...)
	t.Cleanup(m.Close)
	return m
}

func TestShardShift(t *testing.T) {
	cases := []struct {
		shards uint64
		shift  uint
	}{{1, 64}, {2, 63}, {4, 62}, {8, 61}, {256, 56}}
	for _, c := range cases {
		if got := shardShift(c.shards); got != c.shift {
			t.Errorf("shardShift(%d) = %d, want %d", c.shards, got, c.shift)
		}
	}
	// One shard: every hash, including ^0, must route to index 0.
	if idx := ^uint64(0) >> shardShift(1); idx != 0 {
		t.Fatalf("all-ones hash routed to shard %d with 1 shard", idx)
	}
}

func TestPerShard(t *testing.T) {
	if got := perShard(1024, 4); got != 256 {
		t.Errorf("perShard(1024,4) = %d, want 256", got)
	}
	if got := perShard(2, 8); got != 1 {
		t.Errorf("perShard(2,8) = %d, want 1 (floor)", got)
	}
	if got := perShard(1000, 4); got != 256 {
		t.Errorf("perShard(1000,4) = %d, want 256 (rounds total up first)", got)
	}
}

func TestBasicOps(t *testing.T) {
	m := newM(t, WithShards(8))
	if m.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", m.NumShards())
	}
	if !m.Set(1, 100) {
		t.Fatal("first Set should insert")
	}
	if m.Set(1, 200) {
		t.Fatal("second Set should replace")
	}
	if v, ok := m.Get(1); !ok || v != 200 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if m.Insert(1, 300) {
		t.Fatal("Insert of present key succeeded")
	}
	if !m.Replace(1, 400) {
		t.Fatal("Replace of present key failed")
	}
	if m.Replace(2, 1) {
		t.Fatal("Replace of absent key succeeded")
	}
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("Delete wrong")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

// TestCrossShardLenRangeKeys verifies that aggregate views span every
// shard: Len sums, Range visits each element exactly once across
// shard boundaries and honors early stop, Keys snapshots everything.
func TestCrossShardLenRangeKeys(t *testing.T) {
	m := newM(t, WithShards(8))
	const n = 4096
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}

	// Every shard should hold a nontrivial share under splitmix64.
	for i := 0; i < m.NumShards(); i++ {
		if l := m.Shard(i).Len(); l < n/m.NumShards()/2 {
			t.Errorf("shard %d holds %d elements; distribution badly skewed", i, l)
		}
	}

	seen := make(map[uint64]int, n)
	m.Range(func(k uint64, v int) bool {
		if v != int(k) {
			t.Fatalf("Range value for %d = %d", k, v)
		}
		seen[k]++
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range visited %d distinct keys, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("Range visited key %d %d times", k, c)
		}
	}

	visited := 0
	m.Range(func(uint64, int) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Fatalf("early-stop Range visited %d, want 10", visited)
	}

	if got := len(m.Keys()); got != n {
		t.Fatalf("Keys len = %d, want %d", got, n)
	}
}

// findCrossShardPair returns two keys routed to different shards (and
// a same-shard pair) for Move tests.
func findPairs(m *Map[uint64, int]) (crossA, crossB, sameA, sameB uint64) {
	hash := func(k uint64) uint64 { return hashfn.Uint64(k, 0) }
	shardOf := func(k uint64) uint64 { return hash(k) >> m.shift }
	crossA = 0
	for k := uint64(1); ; k++ {
		if shardOf(k) != shardOf(crossA) {
			crossB = k
			break
		}
	}
	for k := uint64(1); ; k++ {
		if k != crossA && shardOf(k) == shardOf(sameA) {
			sameB = k
			break
		}
	}
	return
}

func TestMoveSameAndCrossShard(t *testing.T) {
	m := newM(t, WithShards(8))
	crossA, crossB, sameA, sameB := findPairs(m)

	m.Set(sameA, 1)
	if !m.Move(sameA, sameB) {
		t.Fatal("same-shard Move failed")
	}
	if _, ok := m.Get(sameA); ok {
		t.Fatal("same-shard Move left source")
	}
	if v, ok := m.Get(sameB); !ok || v != 1 {
		t.Fatalf("same-shard Move target = %d,%v", v, ok)
	}
	m.Delete(sameB)

	m.Set(crossA, 2)
	if !m.Move(crossA, crossB) {
		t.Fatal("cross-shard Move failed")
	}
	if _, ok := m.Get(crossA); ok {
		t.Fatal("cross-shard Move left source")
	}
	if v, ok := m.Get(crossB); !ok || v != 2 {
		t.Fatalf("cross-shard Move target = %d,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}

	if m.Move(999, 1000) {
		t.Fatal("Move of absent key succeeded")
	}
	m.Set(crossA, 3)
	if m.Move(crossA, crossB) {
		t.Fatal("Move onto existing key succeeded")
	}
	if v, _ := m.Get(crossB); v != 2 {
		t.Fatal("failed Move corrupted target")
	}
}

// TestPolicyDrivenPerShardResize checks that a map-level policy
// expands each shard independently as its own load crosses the
// watermark.
func TestPolicyDrivenPerShardResize(t *testing.T) {
	m := newM(t, WithShards(4),
		WithInitialBuckets(4*8),
		WithPolicy(core.Policy{MaxLoad: 2, MinLoad: 0.25, MinBuckets: 4 * 8}))
	const n = 4096
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}
	// Auto-resize is asynchronous; wait for every shard to settle
	// under the watermark.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for i := 0; i < m.NumShards(); i++ {
			s := m.Shard(i)
			if float64(s.Len()) > 2*float64(s.Buckets()) {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never expanded under load: %v", m.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := m.Stats()
	if st.AutoGrows == 0 || st.Expands == 0 {
		t.Fatalf("expected auto-grown shards, stats: %v", st)
	}
	for i := 0; i < m.NumShards(); i++ {
		if b := m.Shard(i).Buckets(); b <= 8 {
			t.Errorf("shard %d still at %d buckets", i, b)
		}
	}
}

// TestStatsAggregation: counters sum across shards; Len/Buckets
// recompute the map-wide load factor.
func TestStatsAggregation(t *testing.T) {
	m := newM(t, WithShards(4))
	for i := uint64(0); i < 100; i++ {
		m.Set(i, 1)
	}
	for i := uint64(0); i < 50; i++ {
		m.Delete(i)
	}
	st := m.Stats()
	if st.Inserts != 100 || st.Deletes != 50 || st.Len != 50 {
		t.Fatalf("aggregate stats wrong: %v", st)
	}
	if st.Buckets == 0 || st.LoadFactor != float64(st.Len)/float64(st.Buckets) {
		t.Fatalf("load factor not recomputed: %v", st)
	}
}

// TestSharedDomain: an externally supplied domain is shared by every
// shard and survives Map.Close.
func TestSharedDomain(t *testing.T) {
	dom := rcu.NewDomain()
	defer dom.Close()
	m := NewUint64[int](WithShards(4), WithDomain(dom))
	if m.Domain() != dom {
		t.Fatal("map did not adopt the shared domain")
	}
	for i := 0; i < m.NumShards(); i++ {
		if m.Shard(i).Domain() != dom {
			t.Fatalf("shard %d has a private domain", i)
		}
	}
	m.Set(1, 1)
	m.Close()
	// The shared domain must still be usable after Map.Close.
	dom.Synchronize()
}

// TestReadHandleSpansShards: one handle, keys from every shard.
func TestReadHandleSpansShards(t *testing.T) {
	m := newM(t, WithShards(8))
	const n = 1024
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}
	h := m.NewReadHandle()
	defer h.Close()
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != int(i) {
			t.Fatalf("handle Get(%d) = %d,%v", i, v, ok)
		}
	}
	if h.Contains(n + 1) {
		t.Fatal("handle found absent key")
	}
}

// TestTortureLookupsDuringShardResize mirrors
// core.TestTortureLookupsDuringContinuousResize at the map level:
// stable keys must never be missed by handle lookups while every
// shard continuously doubles and halves and writers churn a disjoint
// volatile range across shards.
func TestTortureLookupsDuringShardResize(t *testing.T) {
	m := newM(t, WithShards(4), WithInitialBuckets(4*64))
	const stable = 2048
	const volatileBase = 1 << 20
	for i := uint64(0); i < stable; i++ {
		m.Set(i, int(i))
	}

	stop := make(chan struct{})
	var misses atomic.Int64
	var lookups atomic.Int64
	var wg sync.WaitGroup

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewReadHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(stable))
				if v, ok := h.Get(k); !ok || v != int(k) {
					misses.Add(1)
				}
				lookups.Add(1)
			}
		}(int64(g))
	}

	// Writer churn on a volatile range, hitting all shards.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 100))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := volatileBase + uint64(rng.Intn(4096))
				switch rng.Intn(3) {
				case 0:
					m.Set(k, int(k))
				case 1:
					m.Delete(k)
				case 2:
					m.Move(k, k+1000000)
				}
			}
		}(int64(g))
	}

	// Resizer: toggle the whole map between two total sizes.
	deadline := time.Now().Add(1200 * time.Millisecond)
	cycles := 0
	for time.Now().Before(deadline) {
		m.Resize(4 * 1024)
		m.Resize(4 * 64)
		cycles++
	}
	close(stop)
	wg.Wait()

	if cycles < 2 {
		t.Skipf("machine too slow to complete resize cycles (%d)", cycles)
	}
	if n := misses.Load(); n != 0 {
		t.Fatalf("%d/%d lookups missed a stable key during %d map resize cycles",
			n, lookups.Load(), cycles)
	}
	// Stable range fully intact afterwards.
	for i := uint64(0); i < stable; i++ {
		if v, ok := m.Get(i); !ok || v != int(i) {
			t.Fatalf("stable key %d = %d,%v after churn", i, v, ok)
		}
	}
	t.Logf("%d lookups across %d resize cycles, 0 misses", lookups.Load(), cycles)
}

// TestConcurrentWritersLand mirrors core.TestConcurrentWritersSerialize:
// distinct-key writers on all shards; every write must land.
func TestConcurrentWritersLand(t *testing.T) {
	m := newM(t, WithShards(8))
	const perWriter = 2000
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perWriter; i++ {
				m.Set(base+i, int(base+i))
			}
		}(uint64(w) * 1_000_000)
	}
	wg.Wait()
	if got, want := m.Len(), writers*perWriter; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		base := uint64(w) * 1_000_000
		for i := uint64(0); i < perWriter; i += 37 {
			if v, ok := m.Get(base + i); !ok || v != int(base+i) {
				t.Fatalf("Get(%d) = %d,%v", base+i, v, ok)
			}
		}
	}
}
