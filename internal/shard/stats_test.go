package shard

import "testing"

func TestDetailedStats(t *testing.T) {
	m := NewUint64[int](WithShards(4), WithInitialBuckets(64))
	defer m.Close()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		m.Set(i, int(i))
	}

	ms := m.DetailedStats()
	if len(ms.PerShard) != 4 {
		t.Fatalf("PerShard len = %d, want 4", len(ms.PerShard))
	}
	sumLen, sumBuckets, sumInserts := 0, 0, uint64(0)
	for i, ps := range ms.PerShard {
		if ps.Len == 0 {
			t.Fatalf("shard %d empty: splitmix64 should spread %d keys over 4 shards", i, n)
		}
		sumLen += ps.Len
		sumBuckets += ps.Buckets
		sumInserts += ps.Inserts
	}
	if sumLen != n || ms.Len != n {
		t.Fatalf("Len: per-shard sum %d, aggregate %d, want %d", sumLen, ms.Len, n)
	}
	if sumBuckets != ms.Buckets || ms.Buckets == 0 {
		t.Fatalf("Buckets: per-shard sum %d, aggregate %d", sumBuckets, ms.Buckets)
	}
	if sumInserts != ms.Inserts || ms.Inserts != n {
		t.Fatalf("Inserts: per-shard sum %d, aggregate %d", sumInserts, ms.Inserts)
	}
	if ms.LoadFactor <= 0 {
		t.Fatal("aggregate load factor missing")
	}

	// The embedded aggregate must agree with the flat Stats view.
	flat := m.Stats()
	if flat.Len != ms.Len || flat.Buckets != ms.Buckets || flat.Inserts != ms.Inserts {
		t.Fatalf("DetailedStats aggregate %+v disagrees with Stats %+v", ms.Stats, flat)
	}
}

func TestSwapAndCompareAndDeleteRouting(t *testing.T) {
	m := NewUint64[string](WithShards(4))
	defer m.Close()

	if _, replaced := m.Swap(9, "a"); replaced {
		t.Fatal("Swap on empty map replaced")
	}
	if old, replaced := m.Swap(9, "b"); !replaced || old != "a" {
		t.Fatalf("Swap = %q, %v", old, replaced)
	}
	if v, ok := m.CompareAndDelete(9, func(v string) bool { return v == "nope" }); ok {
		t.Fatalf("rejected predicate removed %q", v)
	}
	if v, ok := m.CompareAndDelete(9, nil); !ok || v != "b" {
		t.Fatalf("CompareAndDelete = %q, %v", v, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after removal", m.Len())
	}

	// Hashed entry points must agree with the unhashed ones.
	h := m.Hash(42)
	if idx := m.ShardIndex(h); idx < 0 || idx >= m.NumShards() {
		t.Fatalf("ShardIndex = %d out of range", idx)
	}
	m.SwapHashed(h, 42, "x")
	if v, ok := m.GetHashed(h, 42); !ok || v != "x" {
		t.Fatalf("GetHashed = %q, %v", v, ok)
	}
	if v, ok := m.CompareAndDeleteHashed(h, 42, nil); !ok || v != "x" {
		t.Fatalf("CompareAndDeleteHashed = %q, %v", v, ok)
	}
}
