package shard

import (
	"sync/atomic"
	"testing"
)

// BenchmarkWriteMapUpsert is the map-level companion of the core
// write benchmarks picked up by `make bench-write`: concurrent
// upserts through the full route (hash once, shard dispatch, striped
// table write).
func BenchmarkWriteMapUpsert(b *testing.B) {
	m := NewUint64[int](WithInitialBuckets(8192))
	defer m.Close()
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			m.Set(k, int(k))
		}
	})
}

// BenchmarkWriteMapSetBatch100 drives the shard-grouped,
// sorted-stripe batch write path end to end.
func BenchmarkWriteMapSetBatch100(b *testing.B) {
	m := NewUint64[int](WithInitialBuckets(8192))
	defer m.Close()
	const batch = 100
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		ks := make([]uint64, batch)
		vs := make([]int, batch)
		for pb.Next() {
			for i := range ks {
				x += 0x9e3779b97f4a7c15
				ks[i] = (x ^ x>>31) % keySpace
				vs[i] = int(ks[i])
			}
			m.SetBatch(ks, vs)
		}
	})
}
