package shard

import (
	"sync/atomic"
	"testing"
)

// BenchmarkWriteMapUpsert is the map-level companion of the core
// write benchmarks picked up by `make bench-write`: concurrent
// upserts through the full route (hash once, shard dispatch, striped
// table write).
func BenchmarkWriteMapUpsert(b *testing.B) {
	m := NewUint64[int](WithInitialBuckets(8192))
	defer m.Close()
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			m.Set(k, int(k))
		}
	})
}

// Shard-diet sweep (`make bench-shards`): with striped tables
// carrying write parallelism, do memcache/cache-shaped workloads
// still want more than one shard? The pairs below hold everything
// constant except the shard count (1 vs DefaultShards) on the two
// workloads that matter — pure upserts and a 90/10 read/write mix —
// benchstat-ready so the README's "shard-layer diet" note is a
// measurement, not a guess. Adaptive maintenance is pinned off so
// the comparison is shape-vs-shape.

func benchmarkShardsUpsert(b *testing.B, shards int) {
	m := NewUint64[int](WithShards(shards), WithInitialBuckets(8192), WithAdapt(nil))
	defer m.Close()
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			m.Set(k, int(k))
		}
	})
}

func benchmarkShardsMixed(b *testing.B, shards int) {
	m := NewUint64[int](WithShards(shards), WithInitialBuckets(8192), WithAdapt(nil))
	defer m.Close()
	const keySpace = 16384
	for k := uint64(0); k < keySpace; k++ {
		m.Set(k, int(k))
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewReadHandle()
		defer h.Close()
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x += 0x9e3779b97f4a7c15
			k := (x ^ x>>31) % keySpace
			if x%10 == 0 {
				m.Set(k, int(k))
			} else {
				h.Get(k)
			}
		}
	})
}

func BenchmarkShardsUpsert1(b *testing.B)       { benchmarkShardsUpsert(b, 1) }
func BenchmarkShardsUpsertDefault(b *testing.B) { benchmarkShardsUpsert(b, DefaultShards()) }
func BenchmarkShardsMixed1(b *testing.B)        { benchmarkShardsMixed(b, 1) }
func BenchmarkShardsMixedDefault(b *testing.B)  { benchmarkShardsMixed(b, DefaultShards()) }

// BenchmarkWriteMapSetBatch100 drives the shard-grouped,
// sorted-stripe batch write path end to end.
func BenchmarkWriteMapSetBatch100(b *testing.B) {
	m := NewUint64[int](WithInitialBuckets(8192))
	defer m.Close()
	const batch = 100
	const keySpace = 16384
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := seq.Add(1) * 0x9e3779b97f4a7c15
		ks := make([]uint64, batch)
		vs := make([]int, batch)
		for pb.Next() {
			for i := range ks {
				x += 0x9e3779b97f4a7c15
				ks[i] = (x ^ x>>31) % keySpace
				vs[i] = int(ks[i])
			}
			m.SetBatch(ks, vs)
		}
	})
}
