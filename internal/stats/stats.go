// Package stats provides the measurement plumbing for the benchmark
// harness: false-sharing-free counters, nanosecond histograms, and
// the Series/render types that turn measurements into the text tables
// EXPERIMENTS.md records.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// PaddedCounter is an atomic counter on its own cache line, for
// per-worker slots in a shared slice.
type PaddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// Add increments the counter.
func (c *PaddedCounter) Add(d uint64) { c.n.Add(d) }

// Load reads the counter.
func (c *PaddedCounter) Load() uint64 { return c.n.Load() }

// CounterSet is a fixed set of per-worker padded counters.
type CounterSet struct {
	slots []PaddedCounter
}

// NewCounterSet allocates n independent counters.
func NewCounterSet(n int) *CounterSet {
	return &CounterSet{slots: make([]PaddedCounter, n)}
}

// Slot returns worker i's counter.
func (s *CounterSet) Slot(i int) *PaddedCounter { return &s.slots[i] }

// Total sums all slots.
func (s *CounterSet) Total() uint64 {
	var t uint64
	for i := range s.slots {
		t += s.slots[i].Load()
	}
	return t
}

// Histogram is a power-of-two-bucketed nanosecond histogram. It is
// not concurrency-safe; give each worker its own and Merge.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(ns uint64) {
	b := 0
	for v := ns; v > 1; v >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (q in [0,1])
// from the bucket boundaries.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			return 1 << uint(i+1)
		}
	}
	return h.max
}

// Point is one measured (x, y) pair in a Series. P99NS optionally
// carries the sampled 99th-percentile per-op latency in nanoseconds
// (0 = not measured); tables render only Y, but the JSON trajectory
// output includes it so successive runs can diff tail latency too.
type Point struct {
	X     float64
	Y     float64
	P99NS float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddWithP99 appends a point carrying a sampled p99 latency (ns).
func (s *Series) AddWithP99(x, y, p99NS float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, P99NS: p99NS})
}

// Figure is a set of series over a common x-axis, renderable as the
// text analogue of one of the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// RenderTable renders the figure as an aligned text table: one row
// per distinct x, one column per series.
func (f *Figure) RenderTable() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s (rows) vs %s (cells)\n", f.XLabel, f.YLabel)

	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')

	for _, x := range sorted {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			val := math.NaN()
			for _, p := range s.Points {
				if p.X == x {
					val = p.Y
					break
				}
			}
			if math.IsNaN(val) {
				fmt.Fprintf(&b, "%16s", "-")
			} else {
				fmt.Fprintf(&b, "%16.2f", val)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV renders the figure as CSV with an x column and one column
// per series.
func (f *Figure) RenderCSV() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Name, ",", "_"))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			val := math.NaN()
			for _, p := range s.Points {
				if p.X == x {
					val = p.Y
					break
				}
			}
			if math.IsNaN(val) {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%.3f", val)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
