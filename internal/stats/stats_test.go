package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSet(t *testing.T) {
	cs := NewCounterSet(4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				cs.Slot(id).Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := cs.Total(); got != 4000 {
		t.Fatalf("Total = %d, want 4000", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []uint64{100, 200, 300, 400} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 250 {
		t.Fatalf("Mean = %v, want 250", got)
	}
	if h.Max() != 400 {
		t.Fatalf("Max = %d", h.Max())
	}
	if q := h.Quantile(0.99); q < 256 {
		t.Fatalf("p99 upper bound = %d, should cover the max bucket", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	b.Observe(1000)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 1000 {
		t.Fatalf("merged count=%d max=%d", a.Count(), a.Max())
	}
}

func TestFigureRenderTable(t *testing.T) {
	fig := Figure{
		Title:  "test figure",
		XLabel: "readers",
		YLabel: "ops",
	}
	s1 := Series{Name: "A"}
	s1.Add(1, 1.5)
	s1.Add(2, 3.0)
	s2 := Series{Name: "B"}
	s2.Add(1, 0.5)
	fig.Series = []Series{s1, s2}

	out := fig.RenderTable()
	for _, want := range []string{"test figure", "A", "B", "1.50", "3.00", "0.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// B has no point at x=2: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing point not rendered as '-':\n%s", out)
	}
}

func TestFigureRenderCSV(t *testing.T) {
	fig := Figure{Title: "t", XLabel: "x", YLabel: "y"}
	s := Series{Name: "with,comma"}
	s.Add(1, 2)
	fig.Series = []Series{s}
	out := fig.RenderCSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want 2:\n%s", len(lines), out)
	}
	if lines[0] != "x,with_comma" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2.000" {
		t.Fatalf("row = %q", lines[1])
	}
}
