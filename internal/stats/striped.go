package stats

// stripes is the slot count of a Striped counter; a power of two so
// stripe hints mask cheaply.
const stripes = 16

// Striped is a statistics counter sharded across padded slots so that
// hot paths on different cores never contend on one cache line. The
// zero value is ready to use. Callers that hold a natural per-worker
// id pass it as the stripe hint; unrelated callers may pass 0.
type Striped struct {
	slots [stripes]PaddedCounter
}

// Add increments the slot for the given stripe hint.
func (c *Striped) Add(stripe int) {
	c.slots[stripe&(stripes-1)].Add(1)
}

// AddN adds n to the slot for the given stripe hint — batch paths
// fold a whole batch's worth of counts into one atomic add.
func (c *Striped) AddN(stripe int, n uint64) {
	if n == 0 {
		return
	}
	c.slots[stripe&(stripes-1)].Add(n)
}

// Total sums all slots.
func (c *Striped) Total() uint64 {
	var t uint64
	for i := range c.slots {
		t += c.slots[i].Load()
	}
	return t
}
