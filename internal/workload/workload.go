// Package workload generates the key streams and operation mixes the
// benchmark harness drives tables with. Every generator is
// deterministic given its seed and allocation-free on the draw path,
// so measured differences come from the tables, not the load
// generator.
package workload

import "math/rand"

// PRNG is a small, fast, deterministic generator (xorshift*-family)
// suitable for one-per-worker use without locks.
type PRNG struct {
	state uint64
}

// NewPRNG seeds a generator. Seed 0 is remapped to a fixed nonzero
// constant (the generator's state must never be zero).
func NewPRNG(seed uint64) *PRNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &PRNG{state: seed}
}

// Next returns the next 64-bit value.
func (p *PRNG) Next() uint64 {
	x := p.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uintn returns a value in [0, n).
func (p *PRNG) Uintn(n uint64) uint64 {
	return p.Next() % n
}

// Float64 returns a value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Next()>>11) / (1 << 53)
}

// KeyGen produces a key stream.
type KeyGen interface {
	// Key returns the next key to operate on.
	Key() uint64
}

// Uniform draws keys uniformly from [0, Space). With Space set to
// twice the populated key count, half of all lookups miss — the
// harness's default, which exercises full-chain walks as well as
// early exits.
type Uniform struct {
	Space uint64
	rng   *PRNG
}

// NewUniform builds a uniform generator over [0, space).
func NewUniform(space, seed uint64) *Uniform {
	return &Uniform{Space: space, rng: NewPRNG(seed)}
}

// Key implements KeyGen.
func (u *Uniform) Key() uint64 { return u.rng.Uintn(u.Space) }

// Zipf draws keys with a Zipfian distribution over [0, Space) —
// the skewed-popularity case (hot keys), as seen by caches like
// memcached. It wraps math/rand's rejection-inversion sampler with a
// private source so workers do not contend.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf generator: s > 1 is the skew exponent
// (typical cache traces are near 1.01–1.3).
func NewZipf(space uint64, s float64, seed int64) *Zipf {
	r := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(r, s, 1, space-1)}
}

// Key implements KeyGen.
func (z *Zipf) Key() uint64 { return z.z.Uint64() }

// Op is a table operation kind for mixed workloads.
type Op int

// Operation kinds.
const (
	OpLookup Op = iota
	OpInsert
	OpDelete
)

// Mix draws operations with fixed probabilities. The zero value is
// 100% lookups.
type Mix struct {
	// InsertFrac and DeleteFrac are probabilities in [0,1]; the
	// remainder is lookups.
	InsertFrac float64
	DeleteFrac float64
	rng        *PRNG
}

// NewMix builds an operation mix generator.
func NewMix(insertFrac, deleteFrac float64, seed uint64) *Mix {
	return &Mix{InsertFrac: insertFrac, DeleteFrac: deleteFrac, rng: NewPRNG(seed)}
}

// Op returns the next operation kind.
func (m *Mix) Op() Op {
	if m.rng == nil {
		return OpLookup
	}
	f := m.rng.Float64()
	switch {
	case f < m.InsertFrac:
		return OpInsert
	case f < m.InsertFrac+m.DeleteFrac:
		return OpDelete
	default:
		return OpLookup
	}
}
