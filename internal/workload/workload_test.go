package workload

import (
	"math"
	"testing"
)

func TestPRNGDeterminism(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewPRNG(43)
	same := 0
	a = NewPRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestPRNGZeroSeed(t *testing.T) {
	p := NewPRNG(0)
	if p.Next() == 0 && p.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestUintnRange(t *testing.T) {
	p := NewPRNG(7)
	for i := 0; i < 10000; i++ {
		if v := p.Uintn(17); v >= 17 {
			t.Fatalf("Uintn(17) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := NewPRNG(9)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	const space = 64
	u := NewUniform(space, 3)
	counts := make([]int, space)
	const draws = 64 * 1000
	for i := 0; i < draws; i++ {
		counts[u.Key()]++
	}
	mean := float64(draws) / space
	for k, c := range counts {
		if math.Abs(float64(c)-mean) > mean*0.25 {
			t.Fatalf("key %d drawn %d times, mean %.0f — not uniform", k, c, mean)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1<<16, 1.2, 11)
	counts := map[uint64]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Key()]++
	}
	// The head of a Zipf(1.2) distribution must dominate: key 0
	// should be drawn far more often than the tail average.
	if counts[0] < draws/100 {
		t.Fatalf("Zipf head drawn only %d/%d times — not skewed", counts[0], draws)
	}
	for k := range counts {
		if k >= 1<<16 {
			t.Fatalf("Zipf drew key %d outside space", k)
		}
	}
}

func TestMixFractions(t *testing.T) {
	m := NewMix(0.2, 0.1, 5)
	var ins, del, look int
	const draws = 100000
	for i := 0; i < draws; i++ {
		switch m.Op() {
		case OpInsert:
			ins++
		case OpDelete:
			del++
		default:
			look++
		}
	}
	within := func(got int, frac float64) bool {
		want := frac * draws
		return math.Abs(float64(got)-want) < draws*0.02
	}
	if !within(ins, 0.2) || !within(del, 0.1) || !within(look, 0.7) {
		t.Fatalf("mix = ins %d del %d look %d for 0.2/0.1/0.7", ins, del, look)
	}
}

func TestZeroMixIsAllLookups(t *testing.T) {
	var m Mix
	for i := 0; i < 100; i++ {
		if m.Op() != OpLookup {
			t.Fatal("zero Mix produced a non-lookup op")
		}
	}
}
