// Package xu implements the alternative resizable relativistic hash
// table the paper attributes to Herbert Xu: every node carries a
// linked-list pointer for each of two bucket arrays, and resizing
// re-threads the inactive pointer set, waits for readers, then flips
// which set is active.
//
// The paper's critique — reproduced here as an ablation, not a straw
// man — is memory: two next pointers in every node ("extra
// linked-list pointers in every node, high memory usage") and two
// bucket arrays held for the table's lifetime. In exchange the resize
// itself is simple: build the inactive view completely (readers never
// see it), publish it with a single index flip, and wait one grace
// period — no incremental unzipping.
//
// Readers are exactly as fast as the core table's: a delimited read
// section around a chain walk using the pointer set named by the
// active index.
package xu

import (
	"sync"
	"sync/atomic"

	"rphash/internal/hashfn"
	"rphash/internal/rcu"
)

// node carries two chain pointers: next[0] threads the node into
// view 0's buckets, next[1] into view 1's.
type node[K comparable, V any] struct {
	next [2]atomic.Pointer[node[K, V]]
	hash uint64
	key  K
	val  atomic.Pointer[V]
}

// view is one bucket array with an identifying pointer-set index.
type view[K comparable, V any] struct {
	idx  int // which next[] slot this view threads
	mask uint64
	slot []atomic.Pointer[node[K, V]]
}

func newView[K comparable, V any](idx int, n uint64) *view[K, V] {
	return &view[K, V]{idx: idx, mask: n - 1, slot: make([]atomic.Pointer[node[K, V]], n)}
}

// Table is a Xu-style resizable relativistic hash table.
type Table[K comparable, V any] struct {
	active atomic.Pointer[view[K, V]]
	dom    *rcu.Domain
	ownDom bool
	hash   func(K) uint64
	mu     sync.Mutex
	count  atomic.Int64
}

// New creates a table with the given hash and initial bucket count.
func New[K comparable, V any](hash func(K) uint64, buckets uint64, dom *rcu.Domain) *Table[K, V] {
	t := &Table[K, V]{hash: hash}
	if dom != nil {
		t.dom = dom
	} else {
		t.dom = rcu.NewDomain()
		t.ownDom = true
	}
	t.active.Store(newView[K, V](0, hashfn.NextPowerOfTwo(max(buckets, 1))))
	return t
}

// NewUint64 builds a uint64-keyed table with the standard mix and a
// private RCU domain.
func NewUint64[V any](buckets uint64) *Table[uint64, V] {
	return New[uint64, V](func(k uint64) uint64 { return hashfn.Uint64(k, 0) }, buckets, nil)
}

// Domain returns the table's RCU domain.
func (t *Table[K, V]) Domain() *rcu.Domain { return t.dom }

// Get returns the value for k with a relativistic lookup.
func (t *Table[K, V]) Get(k K) (V, bool) {
	var v V
	var ok bool
	t.dom.Read(func() {
		v, ok = t.lookup(k)
	})
	return v, ok
}

func (t *Table[K, V]) lookup(k K) (V, bool) {
	h := t.hash(k)
	vw := t.active.Load()
	for n := vw.slot[h&vw.mask].Load(); n != nil; n = n.next[vw.idx].Load() {
		if n.hash == h && n.key == k {
			return *n.val.Load(), true
		}
	}
	var zero V
	return zero, false
}

// Set upserts k into the active view, reporting insertion.
func (t *Table[K, V]) Set(k K, v V) bool {
	h := t.hash(k)
	t.mu.Lock()
	defer t.mu.Unlock()
	vw := t.active.Load()
	for n := vw.slot[h&vw.mask].Load(); n != nil; n = n.next[vw.idx].Load() {
		if n.hash == h && n.key == k {
			n.val.Store(&v)
			return false
		}
	}
	n := &node[K, V]{hash: h, key: k}
	n.val.Store(&v)
	slot := &vw.slot[h&vw.mask]
	n.next[vw.idx].Store(slot.Load())
	slot.Store(n)
	t.count.Add(1)
	return true
}

// Delete removes k from the active view.
func (t *Table[K, V]) Delete(k K) bool {
	h := t.hash(k)
	t.mu.Lock()
	defer t.mu.Unlock()
	vw := t.active.Load()
	slot := &vw.slot[h&vw.mask]
	var prev *node[K, V]
	for n := slot.Load(); n != nil; n = n.next[vw.idx].Load() {
		if n.hash == h && n.key == k {
			next := n.next[vw.idx].Load()
			if prev == nil {
				slot.Store(next)
			} else {
				prev.next[vw.idx].Store(next)
			}
			t.count.Add(-1)
			return true
		}
		prev = n
	}
	return false
}

// Len returns the element count.
func (t *Table[K, V]) Len() int { return int(t.count.Load()) }

// Buckets returns the active view's bucket count.
func (t *Table[K, V]) Buckets() int { return len(t.active.Load().slot) }

// Resize rebuilds the inactive pointer set into n buckets (rounded to
// a power of two), flips the active view, and waits one grace period.
// Unlike the core table's unzip there are no intermediate shared-chain
// states: readers see the old view until the flip and the complete
// new view after it. The cost is a full re-thread of every node per
// resize and the permanent second pointer in every node.
func (t *Table[K, V]) Resize(n uint64) {
	n = hashfn.NextPowerOfTwo(max(n, 1))
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.active.Load()
	if cur.mask+1 == n {
		return
	}
	next := newView[K, V](1-cur.idx, n)
	// Re-thread every node's inactive pointer. Readers only follow
	// next[cur.idx], so these stores are invisible to them.
	for i := range cur.slot {
		for nd := cur.slot[i].Load(); nd != nil; nd = nd.next[cur.idx].Load() {
			s := &next.slot[nd.hash&next.mask]
			nd.next[next.idx].Store(s.Load())
			s.Store(nd)
		}
	}
	// Flip. A single publication makes the fully-built view current.
	t.active.Store(next)
	// Wait for readers still traversing the old view: after this no
	// reader follows next[cur.idx], so future resizes may re-thread
	// that pointer set freely.
	//lint:allow rplint/gracewait the Xu-style baseline deliberately holds its global writer lock across the grace period; measuring that cost against the relativistic table is the point
	t.dom.Synchronize()
}

// Range iterates the active view.
func (t *Table[K, V]) Range(fn func(K, V) bool) {
	t.dom.Read(func() {
		vw := t.active.Load()
		for i := range vw.slot {
			for n := vw.slot[i].Load(); n != nil; n = n.next[vw.idx].Load() {
				if !fn(n.key, *n.val.Load()) {
					return
				}
			}
		}
	})
}

// Close releases the private domain if the table owns one.
func (t *Table[K, V]) Close() {
	if t.ownDom {
		t.dom.Close()
	}
}
