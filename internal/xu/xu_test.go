package xu

import (
	"testing"

	"rphash/internal/httest"
	"rphash/internal/rcu"
)

func TestConformance(t *testing.T) {
	httest.RunAll(t, func(n uint64) httest.Map {
		return NewUint64[int](n)
	})
}

func TestViewFlipAlternates(t *testing.T) {
	tbl := NewUint64[int](16)
	defer tbl.Close()
	if idx := tbl.active.Load().idx; idx != 0 {
		t.Fatalf("initial view idx = %d, want 0", idx)
	}
	tbl.Resize(64)
	if idx := tbl.active.Load().idx; idx != 1 {
		t.Fatalf("after one resize idx = %d, want 1", idx)
	}
	tbl.Resize(16)
	if idx := tbl.active.Load().idx; idx != 0 {
		t.Fatalf("after two resizes idx = %d, want 0", idx)
	}
}

func TestResizeUsesGracePeriod(t *testing.T) {
	dom := rcu.NewDomain()
	defer dom.Close()
	tbl := New[uint64, int](func(k uint64) uint64 { return k }, 8, dom)
	for i := uint64(0); i < 100; i++ {
		tbl.Set(i, int(i))
	}
	before := dom.Stats().GracePeriods
	tbl.Resize(64)
	if after := dom.Stats().GracePeriods; after <= before {
		t.Fatal("Resize flipped views without a grace period")
	}
}

func TestInsertAfterFlipThenResizeBack(t *testing.T) {
	tbl := NewUint64[int](8)
	defer tbl.Close()
	for i := uint64(0); i < 50; i++ {
		tbl.Set(i, int(i))
	}
	tbl.Resize(32) // flip to view 1
	for i := uint64(50); i < 100; i++ {
		tbl.Set(i, int(i)) // threaded only in view 1
	}
	tbl.Resize(8) // re-thread view 0 from view 1's chains
	for i := uint64(0); i < 100; i++ {
		if v, ok := tbl.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v after flip-back", i, v, ok)
		}
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tbl.Len())
	}
}

func TestRange(t *testing.T) {
	tbl := NewUint64[int](16)
	defer tbl.Close()
	for i := uint64(0); i < 64; i++ {
		tbl.Set(i, int(i))
	}
	tbl.Resize(64)
	seen := map[uint64]bool{}
	tbl.Range(func(k uint64, v int) bool {
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("Range visited %d keys, want 64", len(seen))
	}
}
