package rphash_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rphash"
)

// TestPublicObserve wires the veneer end to end: an observed cache, a
// registry, and the mounted export plane.
func TestPublicObserve(t *testing.T) {
	o := rphash.NewObserver()
	c := rphash.NewCacheString[int](
		rphash.WithCacheObserver(o),
		rphash.WithCacheInitialBuckets(64),
	)
	defer c.Close()

	c.Set("k", 1)
	c.Get("k")
	if _, err := c.GetOrLoad("miss", func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	// Force resizes so the event ring and grace histogram populate.
	c.Resize(4096)
	c.Resize(64)

	snap := o.Snapshot()
	if snap.CacheLoad.Count != 1 {
		t.Fatalf("CacheLoad count = %d, want 1", snap.CacheLoad.Count)
	}
	if snap.GraceWait.Count == 0 {
		t.Fatal("resizes recorded no grace-period waits")
	}
	if len(snap.Events) == 0 {
		t.Fatal("resizes recorded no lifecycle events")
	}

	reg := rphash.NewRegistry()
	o.Register(reg)
	mux := http.NewServeMux()
	rphash.Observe(mux, reg, o)

	get := func(path string) string {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec.Body.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "rphash_grace_wait_seconds_count") ||
		!strings.Contains(body, "rphash_cache_load_seconds_count 1") {
		t.Fatalf("/metrics missing expected families:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "rphash_grace_wait_seconds") {
		t.Fatalf("/debug/vars missing histogram:\n%s", body)
	}
	if body := get("/debug/events"); !strings.Contains(body, "expand") {
		t.Fatalf("/debug/events missing expand timeline:\n%s", body)
	}
}

// TestPublicFlightRecorderAndWatchdog wires the new introspection
// surface through the veneer: a recorder sampling every write, the
// /debug/ops endpoint, and a cache watchdog driven through its public
// Tick.
func TestPublicFlightRecorderAndWatchdog(t *testing.T) {
	o := rphash.NewObserver(rphash.WithFlightRecorder(1, 0))
	c := rphash.NewCacheString[int](
		rphash.WithCacheObserver(o),
		rphash.WithCacheInitialBuckets(64),
	)
	defer c.Close()

	for i := 0; i < 32; i++ {
		c.Set(string(rune('a'+i)), i)
	}
	if o.Ops == nil || o.Ops.Sampled() == 0 {
		t.Fatal("flight recorder sampled no writes at 1-in-1")
	}

	mux := http.NewServeMux()
	rphash.Observe(mux, nil, o)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ops", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "sampled") {
		t.Fatalf("/debug/ops: status %d body:\n%s", rec.Code, rec.Body.String())
	}

	w := c.StartWatchdog(nil, rphash.WatchdogConfig{Interval: time.Hour})
	defer w.Stop()
	w.Tick() // baseline
	if got := w.Tick(); len(got) != 0 {
		t.Fatalf("healthy cache tripped the watchdog: %+v", got)
	}
}
