package rphash

import (
	"net/http"
	"time"

	"rphash/internal/adapt"
	"rphash/internal/cache"
	"rphash/internal/core"
	"rphash/internal/hashfn"
	"rphash/internal/obs"
	"rphash/internal/rcu"
	"rphash/internal/shard"
)

// AdaptConfig tunes adaptive maintenance: the sampling cadence,
// contention-rate hysteresis thresholds for runtime stripe retuning,
// and the unzip-migration fan-out bounds. See internal/adapt and
// DefaultAdaptConfig.
type AdaptConfig = adapt.Config

// AdaptStats is a maintenance-controller observability snapshot
// (samples taken, stripe grows/shrinks, fan-out retunes, last
// sampled contention rate).
type AdaptStats = adapt.Stats

// DefaultAdaptConfig returns the production maintenance defaults:
// 100ms sampling, grow stripes at sustained >=5% lock contention,
// shrink at sustained <=0.5%, fan unzip migration out up to half the
// cores.
func DefaultAdaptConfig() *AdaptConfig { return adapt.DefaultConfig() }

// Table is a resizable relativistic hash table. See the package
// documentation for the concurrency contract.
type Table[K comparable, V any] = core.Table[K, V]

// ReadHandle is a per-goroutine lookup handle; it amortizes reader
// registration for hot loops. Not safe for concurrent use.
type ReadHandle[K comparable, V any] = core.ReadHandle[K, V]

// Stats is a snapshot of table metrics, including resize internals
// (unzip passes and pointer cuts).
type Stats = core.Stats

// Policy controls automatic load-factor-driven resizing.
type Policy = core.Policy

// Option configures a table at construction time.
type Option = core.Option

// Domain is a relativistic-programming (RCU) domain: a registry of
// delimited readers and a grace-period clock. Tables own a private
// domain unless one is shared via WithDomain.
type Domain = rcu.Domain

// Reader is a registered delimited reader for callers that compose
// their own multi-lookup read sections via Domain.
type Reader = rcu.Reader

// New creates a table keyed by K using the supplied hash function.
// The hash must be deterministic for the table's lifetime and should
// mix its low bits well (bucket selection masks the hash with a power
// of two); see internal/hashfn for suitable mixers.
func New[K comparable, V any](hash func(K) uint64, opts ...Option) *Table[K, V] {
	return core.New[K, V](hash, opts...)
}

// NewUint64 creates a table keyed by uint64 with the standard
// splitmix64 finalizer.
func NewUint64[V any](opts ...Option) *Table[uint64, V] {
	return core.NewUint64[V](opts...)
}

// NewString creates a table keyed by string with seeded FNV-1a plus
// an avalanche finalizer.
func NewString[V any](opts ...Option) *Table[string, V] {
	return core.NewString[V](opts...)
}

// NewDomain creates a standalone RCU domain for sharing across
// tables (see WithDomain) or for composing custom relativistic data
// structures. Close it when done.
func NewDomain() *Domain { return rcu.NewDomain() }

// WithDomain shares an existing domain instead of creating a private
// one. Tables sharing a domain share grace periods.
func WithDomain(d *Domain) Option { return core.WithDomain(d) }

// WithInitialBuckets sets the initial bucket count (rounded up to a
// power of two).
func WithInitialBuckets(n uint64) Option { return core.WithInitialBuckets(n) }

// WithPolicy installs an automatic resize policy.
func WithPolicy(p Policy) Option { return core.WithPolicy(p) }

// Engine names accepted by WithEngine, WithMapEngine, and
// WithCacheEngine.
const (
	EngineChain = core.EngineChain
	EngineFlat  = core.EngineFlat
)

// WithEngine selects the table's bucket representation: EngineChain
// (the default) — the paper's relativistic chain layout with
// unzip/zip resizing and the lock-free CAS write fast path — or
// EngineFlat, cache-line-contiguous eight-cell bucket groups with a
// packed hash-tag word, chain spill on overflow, and relativistic
// copy-based migration. The public API and the synchronization-free
// read side are identical either way; flat trades the chain engine's
// lock-free write fast path for contiguous lookups.
func WithEngine(name string) Option { return core.WithEngine(name) }

// WithStripes sets a table's physical writer-stripe count (rounded
// to a power of two, clamped to [1, 256]; default a few per core).
// WithStripes(1) reproduces the paper's single writer mutex — the
// ablation baseline for the striped scheme.
func WithStripes(n int) Option { return core.WithStripes(n) }

// WithCASInsert enables or disables the lock-free write fast path
// (default on): pure inserts publish by CAS on the bucket head with
// epoch validation, and upserts on existing keys revalidate an
// unlocked hint under the stripe, instead of taking the striped slow
// path up front. Disabling it pins every write to the striped path —
// the ablation A7 "locked" baseline. Lookups and value-level
// CompareAndSwapValue are unaffected either way.
func WithCASInsert(enabled bool) Option { return core.WithCASInsert(enabled) }

// WithAdapt starts an adaptive maintenance controller on the table
// at construction: sampled stripe-lock contention grows or shrinks
// the writer-stripe array at runtime, and resize migration fans out
// across workers sized from the live backlog. The core Table default
// is off (nil = off); Map and Cache enable it by default. See
// AdaptConfig and Table.Maintain.
func WithAdapt(cfg *AdaptConfig) Option { return core.WithAdapt(cfg) }

// WithUnzipWorkers pins the initial unzip-migration fan-out for a
// table's expansions (default 1 = the sequential resizer; the adapt
// controller retunes it at runtime when enabled).
func WithUnzipWorkers(n int) Option { return core.WithUnzipWorkers(n) }

// DefaultPolicy expands beyond 2 elements/bucket and shrinks below
// 0.25, with a 64-bucket floor.
func DefaultPolicy() Policy { return core.DefaultPolicy() }

// Map is a sharded relativistic hash map: keys partition across a
// power-of-two array of Tables, while lookups keep the single-table
// read side — wait-free, lock-free, retry-free — through one shared
// Domain. Since Table writers stripe per bucket, a single Table
// already scales with concurrent writers; choose Map when resize
// isolation matters (each shard resizes independently, stalling only
// its own keys) or under extreme writer counts, and Table when you
// need Resize/Move atomicity across the whole structure.
//
// Callers holding many keys at once should use the batch operations
// (GetBatch/SetBatch/DeleteBatch): keys are hashed once and grouped
// by shard, so a B-key batch over S shards enters at most min(B, S)
// reader sections and mutex holds instead of one per key. See the
// package documentation's "Batched operations" section.
type Map[K comparable, V any] = shard.Map[K, V]

// MapReadHandle is a per-goroutine lookup handle spanning every shard
// of a Map. Not safe for concurrent use.
type MapReadHandle[K comparable, V any] = shard.ReadHandle[K, V]

// MapOption configures a Map at construction time.
type MapOption = shard.Option

// NewMap creates a sharded map keyed by K using the supplied hash
// function. The hash must be deterministic for the map's lifetime and
// should mix both its high bits (shard routing) and low bits (bucket
// selection) well; see internal/hashfn for suitable mixers.
func NewMap[K comparable, V any](hash func(K) uint64, opts ...MapOption) *Map[K, V] {
	return shard.New[K, V](hash, opts...)
}

// NewMapUint64 creates a sharded map keyed by uint64 with the
// standard splitmix64 finalizer.
func NewMapUint64[V any](opts ...MapOption) *Map[uint64, V] {
	return shard.NewUint64[V](opts...)
}

// NewMapString creates a sharded map keyed by string with seeded
// FNV-1a plus an avalanche finalizer.
func NewMapString[V any](opts ...MapOption) *Map[string, V] {
	return shard.NewString[V](opts...)
}

// WithShards sets a Map's shard count (rounded up to a power of two).
// The default is one shard per ~4 cores, capped at 16 (writer
// parallelism comes from each table's stripes; shards add resize
// isolation).
func WithShards(n int) MapOption { return shard.WithShards(n) }

// WithMapTableStripes sets each shard table's writer-stripe count
// (see WithStripes). The Map's default adaptive maintenance may
// retune the count at runtime; combine with WithMapAdapt(nil) to
// freeze the shape for measurements.
func WithMapTableStripes(n int) MapOption { return shard.WithTableStripes(n) }

// WithMapDomain shares an existing domain across a Map's shards (and
// any other tables registered on it). Close will not close a shared
// domain.
func WithMapDomain(d *Domain) MapOption { return shard.WithDomain(d) }

// WithMapInitialBuckets sets a Map's total initial bucket count,
// divided across shards.
func WithMapInitialBuckets(total uint64) MapOption { return shard.WithInitialBuckets(total) }

// WithMapEngine selects every shard table's bucket representation
// (EngineChain or EngineFlat; see WithEngine).
func WithMapEngine(name string) MapOption { return shard.WithEngine(name) }

// WithMapPolicy installs an automatic resize policy applied per
// shard (MinBuckets is interpreted map-wide and divided across
// shards).
func WithMapPolicy(p Policy) MapOption { return shard.WithPolicy(p) }

// WithMapAdapt configures the Map's adaptive maintenance controllers
// (one per shard table; on by default). WithMapAdapt(nil) pins
// maintenance off — combine with WithMapTableStripes for
// reproducible benchmark shapes.
func WithMapAdapt(cfg *AdaptConfig) MapOption { return shard.WithAdapt(cfg) }

// MapStats is a Map observability snapshot: the map-wide aggregate
// (embedded Stats) plus every shard's own table snapshot, so bucket
// totals, load factors, and resize counts are visible per shard.
// Obtain one via Map.DetailedStats.
type MapStats = shard.MapStats

// Cache is a TTL + eviction + stampede-protected cache built on Map:
// lock-free allocation-free hits, coarse-clock lazy expiry plus an
// incremental background sweeper, cost-bounded capacity with
// per-shard sampled-LRU eviction, and a singleflight GetOrLoad so a
// miss storm on one hot key issues exactly one load. GetMulti and
// GetOrLoadMulti are the batched forms: shared reader sections per
// shard group, one coarse-clock read and counter update per batch,
// and one loader call for a whole miss set. See the package
// documentation for choosing Table vs Map vs Cache.
type Cache[K comparable, V any] = cache.Cache[K, V]

// CacheOption configures a Cache at construction time.
type CacheOption = cache.Option

// CacheStats is a snapshot of cache metrics (hits, misses, loads,
// evictions, expirations, cost) including the underlying MapStats.
type CacheStats = cache.Stats

// NewCache creates a cache keyed by K using the supplied hash
// function (same contract as NewMap: deterministic, well-mixed high
// and low bits). Close it when done: the cache owns a background
// sweeper and a coarse-clock ticker.
func NewCache[K comparable, V any](hash func(K) uint64, opts ...CacheOption) *Cache[K, V] {
	return cache.New[K, V](hash, opts...)
}

// NewCacheUint64 creates a cache keyed by uint64 with the standard
// splitmix64 finalizer.
func NewCacheUint64[V any](opts ...CacheOption) *Cache[uint64, V] {
	return cache.NewUint64[V](opts...)
}

// NewCacheString creates a cache keyed by string with seeded FNV-1a
// plus an avalanche finalizer.
func NewCacheString[V any](opts ...CacheOption) *Cache[string, V] {
	return cache.NewString[V](opts...)
}

// WithCacheTTL sets the default time-to-live applied by Set and
// GetOrLoad (0 = never expire); SetTTL/SetWith override per entry.
func WithCacheTTL(d time.Duration) CacheOption { return cache.WithTTL(d) }

// WithCacheMaxCost bounds the cache's total cost — the sum of
// per-entry costs (Set's default cost is 1, so with defaults this is
// a max entry count; pass byte sizes to SetWith for a byte budget).
// <= 0 disables eviction.
func WithCacheMaxCost(n int64) CacheOption { return cache.WithMaxCost(n) }

// WithCacheShards sets the underlying Map's shard count (rounded up
// to a power of two; default NextPowerOfTwo(GOMAXPROCS)).
func WithCacheShards(n int) CacheOption { return cache.WithShards(n) }

// WithCacheInitialBuckets sets the cache's total initial bucket count
// across shards.
func WithCacheInitialBuckets(n uint64) CacheOption { return cache.WithInitialBuckets(n) }

// WithCacheEngine selects the cache's table bucket representation
// (EngineChain or EngineFlat; see WithEngine).
func WithCacheEngine(name string) CacheOption { return cache.WithEngine(name) }

// WithCachePolicy overrides the cache's auto-resize policy (the
// default expands beyond 2 elements/bucket and shrinks below 0.25).
// Pass the zero Policy to pin the bucket count.
func WithCachePolicy(p Policy) CacheOption { return cache.WithPolicy(p) }

// WithCacheSweepInterval sets the background expiry sweeper cadence
// (<= 0 disables it; expired entries are then reclaimed only by
// SweepExpired calls, eviction sampling, and overwrites).
func WithCacheSweepInterval(d time.Duration) CacheOption { return cache.WithSweepInterval(d) }

// WithCacheAdapt configures the cache's underlying adaptive
// maintenance controllers (on by default; nil pins them off). See
// WithMapAdapt.
func WithCacheAdapt(cfg *AdaptConfig) CacheOption { return cache.WithAdapt(cfg) }

// Observer is the observability hub: lock-free latency histograms
// for RCU grace-period waits, contended writer stripe-lock waits, and
// cache loader latency, plus a fixed-size concurrent event ring
// capturing resize/unzip lifecycle and stripe-retune decisions. One
// Observer can span any number of tables, maps, and caches; pass it
// via WithObserver/WithMapObserver/WithCacheObserver. A nil Observer
// disables all instrumentation at the cost of one pointer compare per
// site.
type Observer = obs.Observer

// ObserverSnapshot is a point-in-time copy of every Observer metric.
type ObserverSnapshot = obs.ObserverSnapshot

// HistogramSnapshot is a folded latency histogram with Count, SumNS,
// MaxNS, power-of-two buckets, and P50/P95/P99/Quantile accessors.
type HistogramSnapshot = obs.HistogramSnapshot

// Event is one captured lifecycle event (resize phase, grace wait,
// stripe retune); its String method renders a human-readable line.
type Event = obs.Event

// Registry collects named metrics behind closures and renders them as
// Prometheus text exposition or expvar-style JSON. The zero value is
// ready to use.
type Registry = obs.Registry

// ObserverOption configures NewObserver.
type ObserverOption = obs.ObserverOption

// FlightRecorder is the sampled per-operation record stream: 1-in-N
// table writes record their op class, path taken (CAS insert, hint
// replace, striped fallback, migration assist, spill), outcome, shard,
// stripe, and latency into striped lock-free rings. Aggregate its
// Snapshot with AggregateOps or serve the rendered summary at
// /debug/ops (Observe).
type FlightRecorder = obs.Recorder

// OpRecord is one sampled operation from the flight recorder;
// OpPathStats is one (class, path) aggregation row.
type (
	OpRecord    = obs.OpRecord
	OpPathStats = obs.OpPathStats
)

// AggregateOps folds flight-recorder records into per-(class, path)
// rows with exact count, outcome tallies, and p50/p99/max latency,
// sorted by descending count.
func AggregateOps(recs []OpRecord) []OpPathStats { return obs.AggregateOps(recs) }

// NewObserver returns an Observer with a default-capacity event ring.
func NewObserver(opts ...ObserverOption) *Observer { return obs.NewObserver(opts...) }

// WithFlightRecorder attaches a flight recorder to the observer,
// sampling one in sampleEvery instrumented table writes (0 = 1024)
// into rings of perStripe slots (0 = default). The unsampled
// majority of writes pay one atomic ticket; reads are never
// instrumented.
func WithFlightRecorder(sampleEvery, perStripe int) ObserverOption {
	return obs.WithFlightRecorder(sampleEvery, perStripe)
}

// Watchdog is the periodic anomaly self-check: each tick it samples
// table health (grace-period progress, stripe contention, resize
// backlog, evictions) and detects grace-period stalls, stripe
// convoys, stuck resizes, and eviction storms. Detections land in the
// observer's event ring and per-class counters; the first trigger per
// class writes a diagnostic bundle. Start one over a Cache with
// Cache.StartWatchdog, or build a custom sampler with obs.NewWatchdog.
type Watchdog = obs.Watchdog

// WatchdogConfig holds the watchdog's clock, cadence, detection
// thresholds, and bundle directory; zero fields take documented
// defaults (Cache.StartWatchdog fills Clock from the cache).
type WatchdogConfig = obs.WatchdogConfig

// WatchdogSample is one health snapshot the watchdog inspects.
type WatchdogSample = obs.WatchdogSample

// Anomaly is one watchdog detection; AnomalyClass names the four
// detector classes.
type (
	Anomaly      = obs.Anomaly
	AnomalyClass = obs.AnomalyClass
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Observe mounts the observability export plane onto mux: /metrics
// (Prometheus text over every metric in reg), /debug/vars
// (expvar-style JSON), /debug/events (the observer's event-ring
// timeline), /debug/ops (the flight recorder's sampled path/latency
// summary, when the observer has one), and /debug/pprof. reg and o
// may each be nil to skip their endpoints. Typical wiring:
//
//	o := rphash.NewObserver()
//	c := rphash.NewCacheString[V](rphash.WithCacheObserver(o))
//	reg := rphash.NewRegistry()
//	o.Register(reg)
//	rphash.Observe(http.DefaultServeMux, reg, o)
func Observe(mux *http.ServeMux, reg *Registry, o *Observer) { obs.Mount(mux, reg, o) }

// WithObserver instruments a Table with o: grace-period waits,
// contended stripe-lock waits, and resize lifecycle events all record
// into it. nil (the default) disables instrumentation.
func WithObserver(o *Observer) Option { return core.WithObserver(o) }

// WithMapObserver instruments every shard table of a Map with o (see
// WithObserver); ring events carry the shard index.
func WithMapObserver(o *Observer) MapOption { return shard.WithObserver(o) }

// WithCacheObserver instruments a Cache and its underlying map with
// o; additionally records GetOrLoad leader loader latency. The
// lock-free hit path is deliberately not instrumented.
func WithCacheObserver(o *Observer) CacheOption { return cache.WithObserver(o) }

// HashBytes is the repository's standard byte-slice hash (seeded
// FNV-1a with an avalanche finalizer), exported for callers building
// custom key types.
func HashBytes(b []byte, seed uint64) uint64 { return hashfn.Bytes(b, seed) }

// HashString is the string form of HashBytes.
func HashString(s string, seed uint64) uint64 { return hashfn.String(s, seed) }

// HashUint64 is the repository's standard integer hash.
func HashUint64(x, seed uint64) uint64 { return hashfn.Uint64(x, seed) }
