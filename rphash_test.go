package rphash_test

import (
	"sync"
	"testing"
	"time"

	"rphash"
)

// These tests exercise the public façade exactly as a downstream user
// would; the heavy behavioural coverage lives in internal/core.

func TestPublicStringTable(t *testing.T) {
	tbl := rphash.NewString[int]()
	defer tbl.Close()
	tbl.Set("a", 1)
	tbl.Set("b", 2)
	if v, ok := tbl.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if !tbl.Delete("a") {
		t.Fatal("Delete failed")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestPublicCustomKey(t *testing.T) {
	type point struct{ X, Y int32 }
	tbl := rphash.New[point, string](func(p point) uint64 {
		return rphash.HashUint64(uint64(p.X)<<32|uint64(uint32(p.Y)), 1)
	})
	defer tbl.Close()
	tbl.Set(point{1, 2}, "origin-ish")
	if v, ok := tbl.Get(point{1, 2}); !ok || v != "origin-ish" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := tbl.Get(point{2, 1}); ok {
		t.Fatal("transposed key found")
	}
}

func TestPublicResizeAndStats(t *testing.T) {
	tbl := rphash.NewUint64[uint64](rphash.WithInitialBuckets(16))
	defer tbl.Close()
	for i := uint64(0); i < 5000; i++ {
		tbl.Set(i, i*2)
	}
	tbl.Resize(1 << 12)
	st := tbl.Stats()
	if st.Buckets != 1<<12 || st.Len != 5000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Expands == 0 || st.UnzipCuts == 0 {
		t.Fatalf("resize internals not recorded: %+v", st)
	}
	for i := uint64(0); i < 5000; i += 101 {
		if v, ok := tbl.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestPublicSharedDomain(t *testing.T) {
	dom := rphash.NewDomain()
	defer dom.Close()
	a := rphash.NewUint64[int](rphash.WithDomain(dom))
	b := rphash.NewString[int](rphash.WithDomain(dom))
	defer a.Close()
	defer b.Close()
	a.Set(1, 1)
	b.Set("one", 1)
	// One read section spanning both tables: a consistent multi-table
	// view is exactly what shared domains are for.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := dom.Register()
		defer r.Close()
		r.Lock()
		_, okA := a.Get(1)
		_, okB := b.Get("one")
		r.Unlock()
		if !okA || !okB {
			t.Error("shared-domain lookups failed")
		}
	}()
	<-done
}

func TestPublicConcurrentSmoke(t *testing.T) {
	tbl := rphash.NewUint64[int](rphash.WithPolicy(rphash.DefaultPolicy()))
	defer tbl.Close()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 20000; i++ {
				tbl.Set(base+i, int(i))
			}
		}(uint64(w) << 32)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewReadHandle()
			defer h.Close()
			for i := uint64(0); i < 100000; i++ {
				h.Get(i % 40000)
			}
		}()
	}
	wg.Wait()
	if tbl.Len() != 40000 {
		t.Fatalf("Len = %d, want 40000", tbl.Len())
	}
}

func TestPublicShardedMap(t *testing.T) {
	m := rphash.NewMapUint64[string](
		rphash.WithShards(4),
		rphash.WithMapInitialBuckets(256),
		rphash.WithMapPolicy(rphash.DefaultPolicy()),
	)
	defer m.Close()
	if m.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", m.NumShards())
	}
	for i := uint64(0); i < 1000; i++ {
		m.Set(i, "v")
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d", m.Len())
	}
	h := m.NewReadHandle()
	defer h.Close()
	if v, ok := h.Get(42); !ok || v != "v" {
		t.Fatalf("handle Get = %q,%v", v, ok)
	}
	st := m.Stats()
	if st.Inserts != 1000 {
		t.Fatalf("Stats.Inserts = %d", st.Inserts)
	}
}

func TestPublicMapSharedDomainWithTable(t *testing.T) {
	// A Map and a Table can share one domain: one reader outage, one
	// grace-period clock across both structures.
	dom := rphash.NewDomain()
	defer dom.Close()
	m := rphash.NewMapString[int](rphash.WithMapDomain(dom), rphash.WithShards(2))
	tbl := rphash.NewString[int](rphash.WithDomain(dom))
	m.Set("a", 1)
	tbl.Set("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("map Get = %d,%v", v, ok)
	}
	if v, ok := tbl.Get("b"); !ok || v != 2 {
		t.Fatalf("table Get = %d,%v", v, ok)
	}
	m.Close()
	tbl.Close()
	dom.Synchronize() // still alive: neither Close owned it
}

func TestPublicMapConcurrentWriters(t *testing.T) {
	m := rphash.NewMapUint64[int](rphash.WithShards(8))
	defer m.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				m.Set(base+i, int(i))
			}
		}(uint64(w) << 32)
	}
	wg.Wait()
	if m.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", m.Len())
	}
}

func TestPublicCache(t *testing.T) {
	c := rphash.NewCacheString[string](
		rphash.WithCacheShards(2),
		rphash.WithCacheTTL(time.Hour),
		rphash.WithCacheMaxCost(1000),
		rphash.WithCacheInitialBuckets(128),
		rphash.WithCacheSweepInterval(0),
	)
	defer c.Close()

	c.Set("user:1", "alice")
	if v, ok := c.Get("user:1"); !ok || v != "alice" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	c.SetTTL("flash", "sale", time.Millisecond) // expires underneath the reader
	time.Sleep(120 * time.Millisecond)          // > coarse clock granularity
	if _, ok := c.Get("flash"); ok {
		t.Fatal("expired entry still visible")
	}

	loads := 0
	v, err := c.GetOrLoad("user:2", func() (string, error) {
		loads++
		return "bob", nil
	})
	if err != nil || v != "bob" {
		t.Fatalf("GetOrLoad = %q,%v", v, err)
	}
	if _, err := c.GetOrLoad("user:2", func() (string, error) {
		loads++
		return "", nil
	}); err != nil || loads != 1 {
		t.Fatalf("GetOrLoad did not hit cache (loads=%d, err=%v)", loads, err)
	}

	get, release := c.NewGetter()
	defer release()
	if v, ok := get("user:1"); !ok || v != "alice" {
		t.Fatalf("getter = %q,%v", v, ok)
	}

	st := c.Stats()
	if st.Loads != 1 || st.MaxCost != 1000 || st.Entries == 0 {
		t.Fatalf("CacheStats = %+v", st)
	}
	if len(st.Map.PerShard) != 2 {
		t.Fatalf("cache MapStats PerShard = %d, want 2", len(st.Map.PerShard))
	}
}

func TestPublicMapDetailedStats(t *testing.T) {
	m := rphash.NewMapUint64[int](rphash.WithShards(4))
	defer m.Close()
	for i := uint64(0); i < 500; i++ {
		m.Set(i, int(i))
	}
	var ms rphash.MapStats = m.DetailedStats()
	if ms.Len != 500 || len(ms.PerShard) != 4 {
		t.Fatalf("MapStats = len %d, shards %d", ms.Len, len(ms.PerShard))
	}
	total := 0
	for _, ps := range ms.PerShard {
		total += ps.Len
	}
	if total != ms.Len {
		t.Fatalf("per-shard lens %d != aggregate %d", total, ms.Len)
	}
}
